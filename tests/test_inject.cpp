// Fault injection: the injector's determinism and structural events, the
// reliable-MAD retry machinery it exercises, the FabricChecker invariant
// suite, SM failover under a half-distributed batch, and the chaos
// harness's seed-reproducibility.
#include <gtest/gtest.h>

#include <algorithm>

#include "cloud/orchestrator.hpp"
#include "inject/chaos.hpp"
#include "inject/checker.hpp"
#include "inject/injector.hpp"
#include "perf/perf_mgr.hpp"
#include "sm/election.hpp"
#include "telemetry/metrics.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

/// First switch-to-switch cable of the fabric, in (NodeId, port) order.
std::pair<NodeId, PortNum> first_inter_switch_cable(const Fabric& fabric) {
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (!n.is_physical_switch()) continue;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected() &&
          fabric.node(n.ports[p].peer).is_physical_switch()) {
        return {id, p};
      }
    }
  }
  ADD_FAILURE() << "no inter-switch cable";
  return {kInvalidNode, 0};
}

TEST(Injector, SameSeedSameDecisions) {
  auto s1 = test::PhysicalSubnet::small_fat_tree();
  auto s2 = test::PhysicalSubnet::small_fat_tree();
  inject::FaultInjector a(s1.fabric, 42);
  inject::FaultInjector b(s2.fabric, 42);
  a.set_global_fault({.drop_probability = 0.3, .jitter_max_us = 5.0});
  b.set_global_fault({.drop_probability = 0.3, .jitter_max_us = 5.0});
  const auto [sw, port] = first_inter_switch_cable(s1.fabric);
  const NodeId peer = s1.fabric.node(sw).ports[port].peer;
  const PortNum peer_port = s1.fabric.node(sw).ports[port].peer_port;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.drop_on_link(sw, port, peer, peer_port),
              b.drop_on_link(sw, port, peer, peer_port));
    EXPECT_DOUBLE_EQ(a.jitter_us(sw, port, peer, peer_port),
                     b.jitter_us(sw, port, peer, peer_port));
  }
  EXPECT_GT(a.events().drops, 0u);
  EXPECT_EQ(a.events().drops, b.events().drops);
}

TEST(Injector, PerLinkFaultOverridesGlobal) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  inject::FaultInjector inj(s.fabric, 7);
  inj.set_global_fault({.drop_probability = 0.0});
  const auto [sw, port] = first_inter_switch_cable(s.fabric);
  const NodeId peer = s.fabric.node(sw).ports[port].peer;
  const PortNum peer_port = s.fabric.node(sw).ports[port].peer_port;
  inj.set_link_fault(sw, port, {.drop_probability = 1.0});
  // Both directions of the cable drop; an unrelated link does not.
  EXPECT_TRUE(inj.drop_on_link(sw, port, peer, peer_port));
  EXPECT_TRUE(inj.drop_on_link(peer, peer_port, sw, port));
  EXPECT_FALSE(inj.drop_on_link(s.hosts[0], 1, sw, 1));
  inj.clear_link_fault(sw, port);
  EXPECT_FALSE(inj.drop_on_link(sw, port, peer, peer_port));
}

TEST(Injector, CutTicksLinkDownedRestoreTicksRecovery) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  inject::FaultInjector inj(s.fabric, 1);
  const auto [sw, port] = first_inter_switch_cable(s.fabric);
  const NodeId peer = s.fabric.node(sw).ports[port].peer;
  const PortNum peer_port = s.fabric.node(sw).ports[port].peer_port;

  ASSERT_TRUE(inj.cut_link(sw, port));
  EXPECT_FALSE(s.fabric.node(sw).ports[port].connected());
  EXPECT_FALSE(s.fabric.node(peer).ports[peer_port].connected());
  EXPECT_EQ(s.fabric.node(sw).ports[port].counters.link_downed, 1);
  EXPECT_EQ(s.fabric.node(peer).ports[peer_port].counters.link_downed, 1);
  EXPECT_EQ(inj.severed().size(), 1u);
  EXPECT_FALSE(inj.cut_link(sw, port));  // already severed: no-op

  ASSERT_TRUE(inj.restore_link(sw, port));
  EXPECT_TRUE(s.fabric.node(sw).ports[port].connected());
  EXPECT_EQ(s.fabric.node(sw).ports[port].peer, peer);
  EXPECT_EQ(s.fabric.node(sw).ports[port].counters.link_error_recovery, 1);
  EXPECT_EQ(
      s.fabric.node(peer).ports[peer_port].counters.link_error_recovery, 1);
  EXPECT_TRUE(inj.severed().empty());

  ASSERT_TRUE(inj.flap_link(sw, port));
  EXPECT_TRUE(s.fabric.node(sw).ports[port].connected());
  EXPECT_EQ(s.fabric.node(sw).ports[port].counters.link_downed, 2);
  EXPECT_EQ(s.fabric.node(sw).ports[port].counters.link_error_recovery, 2);
  EXPECT_EQ(inj.events().cuts, 2u);
  EXPECT_EQ(inj.events().restores, 2u);
  EXPECT_EQ(inj.events().flaps, 1u);
}

TEST(Injector, KillAndReviveNodeRestoresExactCabling) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const NodeId spine = s.built.spines[0];
  std::vector<std::pair<PortNum, NodeId>> cabling;
  for (PortNum p = 1; p <= s.fabric.node(spine).num_ports(); ++p) {
    if (s.fabric.node(spine).ports[p].connected()) {
      cabling.emplace_back(p, s.fabric.node(spine).ports[p].peer);
    }
  }
  ASSERT_FALSE(cabling.empty());

  inject::FaultInjector inj(s.fabric, 1);
  EXPECT_EQ(inj.kill_node(spine), cabling.size());
  EXPECT_TRUE(inj.is_dead(spine));
  for (const auto& [p, peer] : cabling) {
    EXPECT_FALSE(s.fabric.node(spine).ports[p].connected());
  }

  EXPECT_EQ(inj.revive_node(spine), cabling.size());
  EXPECT_FALSE(inj.is_dead(spine));
  for (const auto& [p, peer] : cabling) {
    EXPECT_EQ(s.fabric.node(spine).ports[p].peer, peer);
  }
  s.fabric.validate();  // the cabling is exactly what it was
}

TEST(ReliableMad, LossyLinkForcesRetriesWithBackoffPricing) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  auto& transport = s.sm->transport();
  inject::FaultInjector inj(s.fabric, 3);
  transport.set_fault_model(&inj);
  inj.set_global_fault({.drop_probability = 1.0});

  const NodeId spine = s.built.spines[0];
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  const SmpCounters before = transport.counters();
  transport.begin_batch();
  const auto outcome = transport.send_lft_block(spine, 0, block);
  const double elapsed = transport.end_batch();
  const SmpCounters after = transport.counters();

  // Every attempt (the original + max_mad_retries resends) timed out.
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 1u + transport.timing().max_mad_retries);
  EXPECT_EQ(outcome.timeouts, outcome.attempts);
  EXPECT_EQ(after.retries - before.retries, transport.timing().max_mad_retries);
  EXPECT_EQ(after.timeouts - before.timeouts, outcome.attempts);
  EXPECT_EQ(after.undeliverable - before.undeliverable, 1u);
  // The batch clock priced every response timeout, exponentially backed off.
  double priced = 0.0;
  for (std::uint32_t a = 0; a < outcome.attempts; ++a) {
    priced += transport.timing().retry_timeout_us(a);
  }
  EXPECT_GE(elapsed, priced);
  transport.set_fault_model(nullptr);
}

TEST(ReliableMad, CleanLinkDeliversFirstAttempt) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  inject::FaultInjector inj(s.fabric, 3);
  s.sm->transport().set_fault_model(&inj);  // all probabilities zero
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  const auto outcome =
      s.sm->transport().send_lft_block(s.built.spines[0], 0, block);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.timeouts, 0u);
  s.sm->transport().set_fault_model(nullptr);
}

TEST(ReliableMad, DropsTickSymbolErrorsWherePerfMgrSeesThem) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  perf::PerfMgr pmgr(*s.sm);
  pmgr.sweep();  // baseline

  auto& transport = s.sm->transport();
  inject::FaultInjector inj(s.fabric, 5);
  transport.set_fault_model(&inj);
  inj.set_global_fault({.drop_probability = 1.0});
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  transport.send_lft_block(s.built.spines[0], 0, block);
  transport.set_fault_model(nullptr);
  inj.set_global_fault({});

  const auto sweep = pmgr.sweep();
  std::uint64_t symbol_errors = 0;
  for (const auto& d : sweep.deltas) symbol_errors += d.symbol_errors;
  EXPECT_GT(symbol_errors, 0u) << "injected MAD loss must be visible to the "
                                  "PerfMgr as symbol-error movement";
}

TEST(ReliableMad, CutLinkShowsAsLinkDownedInSweepDelta) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  perf::PerfMgr pmgr(*s.sm);
  pmgr.sweep();  // baseline

  inject::FaultInjector inj(s.fabric, 5);
  inj.attach_transport(&s.sm->transport());
  const auto [sw, port] = first_inter_switch_cable(s.fabric);
  ASSERT_TRUE(inj.cut_link(sw, port));
  ASSERT_TRUE(inj.restore_link(sw, port));  // so the PMA can poll the port

  const auto sweep = pmgr.sweep();
  const auto* delta = sweep.find(sw, port);
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->link_downed, 1u);
  EXPECT_EQ(delta->link_error_recovery, 1u);
}

TEST(Checker, CleanAfterBoot) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  for (std::size_t h = 0; h < s.hyps.size(); ++h) s.vsf->create_vm(h);
  const inject::FabricChecker checker(*s.sm);
  const auto report = checker.check(s.vsf.get());
  EXPECT_TRUE(report.clean()) << report.violations.front();
  EXPECT_GT(report.lids_checked, 0u);
  EXPECT_GT(report.paths_traced, 0u);
}

TEST(Checker, DetectsCorruptedLftEntry) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  // Point the VM's leaf entry at the wrong port: both the LidMap
  // consistency check and the reachability trace must notice.
  const NodeId leaf = s.hyps[0].leaf;
  s.fabric.node(leaf).lft.set(vm.lid, kDropPort);
  const inject::FabricChecker checker(*s.sm);
  const auto report = checker.check(s.vsf.get());
  EXPECT_FALSE(report.clean());
}

TEST(Checker, DetectsDuplicateLid) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const Lid stolen = s.fabric.node(s.hosts[1]).ports[1].lid;
  s.fabric.set_lid(s.hosts[2], 1, stolen);
  const inject::FabricChecker checker(*s.sm);
  const auto report = checker.check();
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.violations.front().find("duplicate LID"),
            std::string::npos);
}

TEST(Checker, SkipsDetachedLidsInsteadOfFlaggingThem) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  inject::FaultInjector inj(s.fabric, 1);
  inj.attach_transport(&s.sm->transport());
  // Kill a spine: its own LID goes legitimately dark.
  inj.kill_node(s.built.spines[0]);
  s.sm->reconverge();
  const inject::FabricChecker checker(*s.sm);
  const auto report = checker.check(s.vsf.get());
  EXPECT_TRUE(report.clean()) << report.violations.front();
  EXPECT_GT(report.lids_skipped_detached, 0u);
}

// The ISSUE's failover satellite: the master dies *mid-batch* — routes
// recomputed after a cut, half the LFT blocks distributed — and a standby
// adopts the subnet and re-converges it to a checker-clean state.
TEST(Failover, MasterDiesMidBatchStandbyReconverges) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const auto factory = [] {
    return routing::make_engine(routing::EngineKind::kMinHop);
  };
  sm::SmElection election(s.fabric, factory);
  const std::size_t master_idx = election.add_candidate(s.hosts[0], 10);
  election.add_candidate(s.hosts[7], 5);
  auto first = election.elect();
  ASSERT_EQ(first.master, master_idx);
  election.master_sweep();

  // A link dies; the master recomputes routes and begins distributing the
  // repair batch, but crashes after landing only the first dirty block.
  inject::FaultInjector inj(s.fabric, 9);
  sm::SubnetManager* master = election.master_sm();
  inj.attach_transport(&master->transport());
  const auto [sw, port] = first_inter_switch_cable(s.fabric);
  ASSERT_TRUE(inj.cut_link(sw, port));
  master->compute_routes();
  const auto& routing = master->routing_result();
  bool sent_one = false;
  for (routing::SwitchIdx sidx = 0;
       sidx < routing.graph.num_switches() && !sent_one; ++sidx) {
    const NodeId node = routing.graph.switches[sidx];
    if (!master->transport().hops_to(node)) continue;
    const Lft& want = routing.lfts[sidx];
    const Lft& have = s.fabric.node(node).lft;
    for (std::size_t b = 0; b < want.block_count(); ++b) {
      if (!want.block_differs(have, b)) continue;
      master->transport().send_lft_block(node, static_cast<std::uint32_t>(b),
                                         want.block(b));
      sent_one = true;
      break;
    }
  }
  ASSERT_TRUE(sent_one) << "the cut must leave at least one dirty block";

  // The master dies with the batch half-landed. A standby poll notices,
  // takes over (adopting LIDs), and re-converges the hybrid state.
  election.fail_candidate(master_idx);
  const auto takeover = election.poll();
  ASSERT_TRUE(takeover.master.has_value());
  ASSERT_NE(*takeover.master, master_idx);
  sm::SubnetManager* standby = election.master_sm();
  ASSERT_NE(standby, master);
  const auto recovery = standby->reconverge();
  EXPECT_TRUE(recovery.converged);

  const inject::FabricChecker checker(*standby);
  const auto report = checker.check();
  EXPECT_TRUE(report.clean()) << report.violations.front();
}

TEST(ColdResync, RevivedSwitchGetsFullTableResync) {
  // A switch that vanished and came back may have rebooted with stale or
  // empty hardware tables the SM cannot see. The sweep must not trust the
  // last-known installed copy: the first reconverge that reaches the
  // revived switch resends its entire master table, then returns to
  // diff-only pushes.
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  inject::FaultInjector injector(s.fabric, 5);
  injector.attach_transport(&s.sm->transport());
  const NodeId spine = s.built.spines[0];

  injector.kill_node(spine);
  const auto down = s.sm->reconverge();
  EXPECT_TRUE(down.converged);
  EXPECT_EQ(s.sm->cold_resyncs_pending(), 1u)
      << "the unreachable spine must be marked for a cold resync";

  injector.revive_node(spine);
  const auto up = s.sm->reconverge();
  EXPECT_TRUE(up.converged);
  EXPECT_EQ(s.sm->cold_resyncs_pending(), 0u);
  // Full-table resend: every block of the revived switch went out even
  // though its installed bytes still matched the master copy.
  EXPECT_GE(up.smps, s.sm->lids().min_lft_blocks());

  // Steady state again: nothing further to send, and the checker is clean.
  EXPECT_EQ(s.sm->reconverge().smps, 0u);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).clean());
}

TEST(Chaos, SameSeedSameDigest) {
  auto run = [](std::uint64_t seed) {
    auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
    return inject::run_chaos(*s.vsf, seed, 10);
  };
  const auto a = run(21);
  const auto b = run(21);
  const auto c = run(22);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.reconverge_smps, b.reconverge_smps);
  EXPECT_EQ(a.reconverge_time_us, b.reconverge_time_us);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].detail, b.events[i].detail);
  }
  EXPECT_NE(a.digest, c.digest);
}

TEST(Chaos, LegacySeedDigestPinned) {
  // The new fault kinds (migration faults, topology deltas) default to
  // weight 0 and zero-weight kinds draw nothing from the RNG, so enabling
  // the features must not perturb existing seeds. This digest was captured
  // before the topology-delta events existed; it must stay bit-stable.
  // (Switch kill/revive are disabled because the cold-resync fix
  // legitimately changed the SMP counts of seeds that revive switches.)
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud.launch_vms(s.hyps.size());
  inject::FaultInjector injector(s.fabric, 1234);
  inject::ChaosConfig config;
  config.seed = 1234;
  config.steps = 16;
  config.weight_switch_kill = 0;
  config.weight_switch_revive = 0;
  config.mad_faults.drop_probability = 0.02;
  const auto report = inject::run_chaos(cloud, injector, config);
  EXPECT_EQ(report.checker_violations, 0u);
  EXPECT_EQ(report.digest, 0x47c0542d79d8965cULL);
}

TEST(Chaos, RecoversWithZeroViolationsAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
    const auto report = inject::run_chaos(*s.vsf, seed, 12);
    EXPECT_EQ(report.checker_violations, 0u) << "seed " << seed;
    EXPECT_TRUE(report.all_converged) << "seed " << seed;
    EXPECT_GT(report.structural_events + report.migrations, 0u);
  }
}

TEST(Chaos, LossyMadPlaneStillConverges) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  s.vsf->boot();
  cloud.launch_vms(s.hyps.size());
  inject::FaultInjector injector(s.fabric, 6);
  inject::ChaosConfig config;
  config.seed = 6;
  config.steps = 10;
  config.mad_faults.drop_probability = 0.25;
  const auto report = inject::run_chaos(cloud, injector, config);
  EXPECT_EQ(report.checker_violations, 0u);
  EXPECT_TRUE(report.all_converged);
  EXPECT_GT(report.reconverge_retries, 0u)
      << "a 25% MAD drop rate must force resends";
}

TEST(Chaos, ExportsTelemetry) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  auto& registry = telemetry::Registry::global();
  const auto steps_before =
      registry.counter_family_total("ibvs_chaos_steps_total");
  const auto events_before =
      registry.counter_family_total("ibvs_inject_events_total");
  const auto report = inject::run_chaos(*s.vsf, 13, 8);
  EXPECT_EQ(registry.counter_family_total("ibvs_chaos_steps_total"),
            steps_before + report.steps);
  EXPECT_GE(registry.counter_family_total("ibvs_inject_events_total"),
            events_before + report.structural_events);
}

}  // namespace
}  // namespace ibvs
