// INT collector, congestion map, PMA fusion, and the placement control loop.
#include <gtest/gtest.h>

#include "cloud/orchestrator.hpp"
#include "fabric/credit_sim.hpp"
#include "perf/int_collector.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using fabric::CreditSimConfig;
using fabric::FlowSpec;
using fabric::IntHop;
using fabric::IntPathRecord;
using perf::IntCollector;
using perf::LinkKey;

TEST(Log2Distribution, QuantilesAreBucketUpperBounds) {
  perf::Log2Distribution d;
  for (std::uint64_t v : {0ull, 0ull, 1ull, 2ull, 3ull, 7ull, 100ull}) {
    d.observe(v);
  }
  EXPECT_EQ(d.total, 7u);
  EXPECT_EQ(d.max, 100u);
  EXPECT_EQ(d.sum, 113u);
  EXPECT_EQ(d.quantile(0.0), 0u);
  // p50 lands in the bit_width-2 bucket (values 2..3): upper bound 3.
  EXPECT_EQ(d.quantile(0.5), 3u);
  EXPECT_EQ(d.quantile(1.0), 100u);  // capped at the observed max
  EXPECT_NEAR(d.mean(), 113.0 / 7.0, 1e-9);
}

IntPathRecord make_record(NodeId src, std::uint32_t dst,
                          std::uint32_t tenant,
                          std::vector<IntHop> hops) {
  IntPathRecord r;
  r.src = src;
  r.dst = Lid{static_cast<std::uint16_t>(dst)};
  r.tenant = tenant;
  r.hops = std::move(hops);
  return r;
}

TEST(IntCollector, AggregatesLinksFlowsAndTenants) {
  IntCollector c;
  const IntHop hot{.node = 10, .egress_port = 2, .occupancy = 1,
                   .blocked_steps = 8};
  const IntHop cool{.node = 11, .egress_port = 3, .occupancy = 0,
                    .blocked_steps = 1};
  c.on_path(make_record(1, 100, 0, {hot, cool}));
  c.on_path(make_record(1, 100, 0, {hot}));
  c.on_path(make_record(2, 100, 1, {hot, cool}));

  const auto map = c.build_map(1);
  EXPECT_EQ(map.stacks, 3u);
  EXPECT_EQ(map.hops, 5u);
  EXPECT_EQ(map.links.size(), 2u);
  EXPECT_EQ(map.blocked_on(10, 2), 24u);
  EXPECT_EQ(map.blocked_on(11, 3), 2u);
  EXPECT_EQ(map.blocked_on(99, 1), 0u);  // never sampled
  // top_k = 1 keeps only the hotter link.
  ASSERT_EQ(map.hot_links.size(), 1u);
  EXPECT_EQ(map.hot_links[0].link, (LinkKey{10, 2}));
  EXPECT_EQ(map.hot_links[0].blocked_total, 24u);
  EXPECT_TRUE(map.is_hot(10, 2));
  EXPECT_FALSE(map.is_hot(11, 3));
  // Tenant attribution: tenant 0 contributed 8+1+8, tenant 1 8+1.
  EXPECT_EQ(map.tenant_blocked.at(0), 17u);
  EXPECT_EQ(map.tenant_blocked.at(1), 9u);
  EXPECT_EQ(map.links.at(LinkKey{10, 2}).tenant_blocked.at(1), 8u);
  // Per-flow records keyed by (src, dst, tenant).
  EXPECT_EQ(c.flows().size(), 2u);
  const auto& flow =
      c.flows().at(perf::FlowKey{.src = 1, .dst_lid = 100, .tenant = 0});
  EXPECT_EQ(flow.packets, 2u);
  EXPECT_EQ(flow.blocked_total, 17u);

  const std::string json = map.to_json();
  EXPECT_NE(json.find("\"hot_links\":["), std::string::npos);
  EXPECT_NE(json.find("\"tenants\":["), std::string::npos);

  c.reset();
  EXPECT_EQ(c.stacks(), 0u);
  EXPECT_TRUE(c.build_map(4).links.empty());
}

TEST(IntCollector, HotLinksMatchPmaXmitWaitOnTheSameRun) {
  // Acceptance: with 1 credit per channel and full sampling, INT and PMA
  // must agree on where the fabric is backed up — the stacks attribute
  // blocked steps to the same egresses whose PortXmitWait ticked, and the
  // map's hottest link tops the PMA ranking too. (Blocked steps can exceed
  // wait ticks by at most one step per forwarding: a packet whose upstream
  // channel is evaluated before the downstream slot frees ages one step
  // without a wait tick.)
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  std::vector<FlowSpec> flows;  // all-to-one incast onto host 0
  for (std::size_t i = 1; i < s.hosts.size(); ++i) {
    flows.push_back(
        FlowSpec{s.hosts[i], s.fabric.node(s.hosts[0]).lid(), 10, 0});
  }
  IntCollector collector;
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.int_mode.enabled = true;
  config.int_mode.sink = &collector;
  const auto report = fabric::simulate_flows(s.fabric, flows, config);
  ASSERT_TRUE(report.all_delivered());
  const auto map = collector.build_map(4);
  ASSERT_FALSE(map.hot_links.empty());

  // Per-link agreement: wait <= blocked <= wait + samples.
  for (const auto& [key, link] : map.links) {
    const std::uint64_t wait =
        s.fabric.node(key.node).ports[key.port].counters.xmit_wait;
    EXPECT_GE(link.blocked.sum, wait)
        << "node " << key.node << " port " << unsigned{key.port};
    EXPECT_LE(link.blocked.sum, wait + link.samples)
        << "node " << key.node << " port " << unsigned{key.port};
  }
  // The map's hottest link is among the top PMA ports by xmit-wait.
  std::vector<std::pair<std::uint64_t, LinkKey>> pma;
  for (NodeId n = 0; n < s.fabric.size(); ++n) {
    const auto& node = s.fabric.node(n);
    for (std::size_t p = 1; p < node.ports.size(); ++p) {
      const std::uint32_t wait = node.ports[p].counters.xmit_wait;
      if (wait > 0) {
        pma.emplace_back(wait, LinkKey{n, static_cast<PortNum>(p)});
      }
    }
  }
  ASSERT_FALSE(pma.empty());
  std::sort(pma.begin(), pma.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const auto top = map.hot_links[0].link;
  bool in_pma_top3 = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, pma.size()); ++i) {
    if (pma[i].second == top) in_pma_top3 = true;
  }
  EXPECT_TRUE(in_pma_top3)
      << "INT top link (" << top.node << "," << unsigned{top.port}
      << ") not in the PMA xmit-wait top-3";
  // And every INT hot link shows PMA wait on the same run.
  for (const auto& hot : map.hot_links) {
    EXPECT_GT(
        s.fabric.node(hot.link.node).ports[hot.link.port].counters.xmit_wait,
        0u);
  }
}

TEST(IntCollector, FusionSeparatesHotFromBroken) {
  IntCollector c;
  const IntHop hot{.node = 5, .egress_port = 1, .blocked_steps = 40};
  const IntHop dying{.node = 6, .egress_port = 2, .blocked_steps = 30};
  c.on_path(make_record(1, 50, 0, {hot, dying}));
  const auto map = c.build_map(8);

  perf::HealthReport health;
  health.findings.push_back(perf::PortFinding{
      .node = 6, .port = 2, .status = perf::PortStatus::kError,
      .reason = "symbol-error spike"});
  health.findings.push_back(perf::PortFinding{
      .node = 9, .port = 4, .status = perf::PortStatus::kDegraded,
      .reason = "rcv errors"});
  health.errors = 1;
  health.degraded = 1;

  const auto diagnoses = perf::fuse_with_health(map, health);
  ASSERT_EQ(diagnoses.size(), 3u);  // sorted by LinkKey
  EXPECT_EQ(diagnoses[0].link, (LinkKey{5, 1}));
  EXPECT_EQ(diagnoses[0].verdict, perf::LinkVerdict::kHot);
  EXPECT_EQ(diagnoses[0].blocked_total, 40u);
  EXPECT_EQ(diagnoses[1].link, (LinkKey{6, 2}));
  EXPECT_EQ(diagnoses[1].verdict, perf::LinkVerdict::kHotAndBroken);
  EXPECT_NE(diagnoses[1].reason.find("symbol-error"), std::string::npos);
  EXPECT_EQ(diagnoses[2].link, (LinkKey{9, 4}));
  EXPECT_EQ(diagnoses[2].verdict, perf::LinkVerdict::kBroken);
  EXPECT_EQ(diagnoses[2].blocked_total, 0u);
  EXPECT_EQ(perf::to_string(perf::LinkVerdict::kHot), "hot");
}

/// Background traffic hammering leaf 0 (tenant 0): incast from the other
/// leaves plus an intra-leaf ring among hypervisors 0-2, so every leaf-0
/// downlink has two ingress channels competing for it — the downlinks
/// themselves go hot, not just the spine paths feeding them.
std::vector<FlowSpec> leaf0_incast(const test::VirtualSubnet& s) {
  std::vector<FlowSpec> flows;
  for (std::size_t src = 3; src < s.hyps.size(); ++src) {
    for (std::size_t dst = 0; dst < 3; ++dst) {
      flows.push_back(FlowSpec{
          s.hyps[src].pf,
          s.fabric.node(s.hyps[dst].pf).lid(), 20, 0});
    }
  }
  for (std::size_t h = 0; h < 3; ++h) {
    flows.push_back(FlowSpec{
        s.hyps[h].pf,
        s.fabric.node(s.hyps[(h + 1) % 3].pf).lid(), 40, 0});
  }
  return flows;
}

TEST(CongestionAwarePlacement, AvoidsTheHotLeafAndReducesVictimBlocking) {
  // Acceptance: in a contended scenario, placement steered by the INT map
  // must land the new VM off the hot leaf and measurably reduce the victim
  // tenant's blocked steps versus congestion-blind (first-fit) placement.
  const auto scenario = [](bool aware) {
    auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
    s.vsf->boot();
    const auto background = leaf0_incast(s);
    CreditSimConfig config;
    config.credits_per_channel = 1;  // contended: every leaf-0 downlink hot

    // Telemetry pass: INT-sample the background to build the map. Run it in
    // both scenarios so the fabrics stay byte-identical.
    IntCollector sampler;
    config.int_mode.enabled = true;
    config.int_mode.sink = &sampler;
    EXPECT_TRUE(
        fabric::simulate_flows(s.fabric, background, config).all_delivered());
    const auto map = sampler.build_map(8);
    EXPECT_GT(map.blocked_on(s.hyps[0].leaf, s.hyps[0].leaf_port), 0u);

    cloud::CloudOrchestrator orch(
        *s.vsf, aware ? cloud::Placement::kCongestionAware
                      : cloud::Placement::kFirstFit);
    if (aware) orch.attach_congestion(&map);
    const auto vm = orch.launch_vms(1)[0];
    const std::size_t chosen = s.vsf->vm(vm).hypervisor;

    // Victim pass: the same background plus one victim flow (tenant 1)
    // from the SM node to the freshly placed VM.
    auto combined = background;
    FlowSpec victim;
    victim.src = s.sm_node;
    victim.dst = s.vsf->vm(vm).lid;
    victim.packets = 30;
    victim.tenant = 1;
    combined.push_back(victim);
    IntCollector meter;
    config.int_mode.sink = &meter;
    EXPECT_TRUE(
        fabric::simulate_flows(s.fabric, combined, config).all_delivered());
    const auto after = meter.build_map(8);
    const auto it = after.tenant_blocked.find(1);
    const std::uint64_t victim_blocked =
        it == after.tenant_blocked.end() ? 0 : it->second;
    return std::tuple{chosen, s.hyps[chosen].leaf, s.hyps[0].leaf,
                      victim_blocked};
  };

  const auto [blind_h, blind_leaf, hot_leaf_b, blind_blocked] =
      scenario(false);
  const auto [aware_h, aware_leaf, hot_leaf_a, aware_blocked] =
      scenario(true);
  // First-fit walks into the congested leaf; the map walks away from it.
  EXPECT_EQ(blind_h, 0u);
  EXPECT_EQ(blind_leaf, hot_leaf_b);
  EXPECT_NE(aware_leaf, hot_leaf_a) << "picked hypervisor " << aware_h;
  EXPECT_LT(aware_blocked, blind_blocked);
  EXPECT_GT(blind_blocked, 0u);
}

TEST(CongestionAwarePlacement, RanksMigrationDestinationsByUplinkHeat) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto background = leaf0_incast(s);
  IntCollector sampler;
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.int_mode.enabled = true;
  config.int_mode.sink = &sampler;
  ASSERT_TRUE(
      fabric::simulate_flows(s.fabric, background, config).all_delivered());
  const auto map = sampler.build_map(8);

  cloud::CloudOrchestrator orch(*s.vsf, cloud::Placement::kFirstFit);
  const auto vm = s.vsf->create_vm(6).vm;  // lives on leaf 2
  // Without a map every candidate scores 0.
  for (const auto& [h, score] : orch.rank_destinations(vm)) {
    EXPECT_EQ(score, 0u);
  }
  orch.attach_congestion(&map);
  ASSERT_TRUE(orch.congestion_aware());
  const auto ranked = orch.rank_destinations(vm);
  ASSERT_FALSE(ranked.empty());
  // Ascending by congestion; the hot-leaf hypervisors score strictly worse
  // than the best candidate, and the source is excluded.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].second, ranked[i].second);
    EXPECT_NE(ranked[i].first, 6u);
  }
  EXPECT_LT(ranked.front().second, orch.uplink_congestion(0));
  EXPECT_NE(s.hyps[ranked.front().first].leaf, s.hyps[0].leaf);
}

TEST(MigrationImpactProbe, MeasuresVictimFlowsAcrossTheMove) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0).vm;
  cloud::CloudOrchestrator orch(*s.vsf, cloud::Placement::kFirstFit);

  // Victim flows from every other hypervisor onto the VM (tenant 7): they
  // ride the links the migration is about to update.
  std::vector<FlowSpec> victims;
  for (std::size_t h = 2; h < s.hyps.size(); ++h) {
    FlowSpec f;
    f.src = s.hyps[h].pf;
    f.dst = s.vsf->vm(vm).lid;
    f.packets = 30;
    f.tenant = 7;
    victims.push_back(f);
  }
  cloud::CloudOrchestrator::ProbeOptions options;
  options.sim.credits_per_channel = 1;
  options.sim.timeout_steps = 64;  // IB timeouts cover the transient
  options.migrate_at_step = 10;
  // The switches this move will touch, resolved before anything migrates.
  const auto update_set = orch.predict_update_set(vm, 1);
  const auto& graph = s.sm->routing_result().graph;
  std::vector<NodeId> updated;
  for (const auto idx : update_set) updated.push_back(graph.switches[idx]);
  const auto probe = orch.probe_migration_impact(vm, 1, victims, options);

  // The migration really happened, intra-leaf (hyp 0 -> 1, same leaf).
  EXPECT_EQ(s.vsf->vm(vm).hypervisor, 1u);
  EXPECT_TRUE(probe.migration.intra_leaf);
  EXPECT_GT(probe.migration.reconfig.switches_updated, 0u);
  // Every phase sampled traffic into its own map.
  EXPECT_GT(probe.before.map.stacks, 0u);
  EXPECT_GT(probe.during.map.stacks, 0u);
  EXPECT_GT(probe.after.map.stacks, 0u);
  EXPECT_GT(probe.before.victim_blocked, 0u);  // incast always queues
  // Shared links: blocking on exactly the switches the move updates (the
  // shared leaf plus any switch whose per-LID up-port differs).
  ASSERT_FALSE(probe.shared_links.empty());
  for (const auto& link : probe.shared_links) {
    EXPECT_NE(std::find(updated.begin(), updated.end(), link.link.node),
              updated.end())
        << "shared link on node " << link.link.node
        << " which the migration does not update";
  }
}

TEST(MigrationImpactProbe, DefaultOptionsOverloadRuns) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0).vm;
  cloud::CloudOrchestrator orch(*s.vsf, cloud::Placement::kFirstFit);
  std::vector<FlowSpec> victims{
      FlowSpec{s.hyps[2].pf, s.vsf->vm(vm).lid, 5, 0}};
  const auto probe = orch.probe_migration_impact(vm, 3, victims);
  EXPECT_EQ(s.vsf->vm(vm).hypervisor, 3u);
  EXPECT_GT(probe.after.map.stacks, 0u);
}

}  // namespace
}  // namespace ibvs
