// End-to-end integration: full subnet lifecycle across modules.
#include <gtest/gtest.h>

#include "cloud/orchestrator.hpp"
#include "deadlock/analysis.hpp"
#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "sm/sa.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace ibvs {
namespace {

using core::LidScheme;

struct IntegrationCase {
  LidScheme scheme;
  routing::EngineKind engine;
};

class IntegrationTest : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(IntegrationTest, FullLifecycleOnVirtualizedFatTree) {
  const auto [scheme, engine] = GetParam();
  auto s = test::VirtualSubnet::small(scheme, 8, 4, engine);
  const auto boot = s.vsf->boot();
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);
  EXPECT_GT(boot.distribution.smps, 0u);

  // SA + cache stack on top.
  sm::SaService sa(*s.sm);
  sm::PathRecordCache cache(sa, *s.sm);

  // Launch a fleet, talk to everything, migrate, talk again from cache.
  cloud::CloudOrchestrator orch(*s.vsf, cloud::Placement::kRoundRobin);
  const auto vms = orch.launch_vms(12);
  const Lid observer = s.fabric.node(s.hyps[7].pf).lid();
  for (const auto vm : vms) {
    const Guid guid = s.vsf->vm(vm).vguid;
    ASSERT_TRUE(cache.resolve(observer, guid).has_value());
  }
  const auto misses_before = cache.misses();

  // Random migrations.
  SplitMix64 rng(7);
  for (int i = 0; i < 8; ++i) {
    const auto vm = vms[rng.below(vms.size())];
    const auto current = s.vsf->vm(vm).hypervisor;
    const auto dst = s.vsf->find_free_hypervisor(current);
    if (!dst) continue;
    const auto report = orch.migrate(vm, *dst);
    EXPECT_LE(report.network.reconfig.switches_updated,
              report.network.reconfig.switches_total);
  }

  // Every VM reachable; every cached record still valid (vSwitch property).
  for (const auto vm : vms) {
    const Lid lid = s.vsf->vm(vm).lid;
    EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), lid));
    ASSERT_TRUE(cache.resolve(observer, s.vsf->vm(vm).vguid).has_value());
  }
  EXPECT_EQ(cache.misses(), misses_before);  // zero new SA queries
  EXPECT_EQ(cache.stale_hits(), 0u);

  // Hardware tables still mirror the master tables.
  const auto& routing = s.sm->routing_result();
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    EXPECT_TRUE(s.fabric.node(routing.graph.switches[i]).lft ==
                routing.lfts[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesEngines, IntegrationTest,
    ::testing::Values(
        IntegrationCase{LidScheme::kPrepopulated, routing::EngineKind::kMinHop},
        IntegrationCase{LidScheme::kPrepopulated,
                        routing::EngineKind::kFatTree},
        IntegrationCase{LidScheme::kDynamic, routing::EngineKind::kMinHop},
        IntegrationCase{LidScheme::kDynamic, routing::EngineKind::kFatTree},
        IntegrationCase{LidScheme::kDynamic, routing::EngineKind::kDfsssp}),
    [](const auto& info) {
      return (info.param.scheme == LidScheme::kPrepopulated ? "prepop_"
                                                            : "dynamic_") +
             [&] {
               auto n = routing::to_string(info.param.engine);
               std::replace(n.begin(), n.end(), '-', '_');
               return n;
             }();
    });

TEST(IntegrationChurn, LongRandomChurnOnPaper324Subtree) {
  // A denser scenario on a slice of the paper's 324-node tree: 12
  // hypervisors x 4 VFs, prepopulated, with interleaved full verification.
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 6,
                                       .num_spines = 6,
                                       .hosts_per_leaf = 3,
                                       .radix = 36});
  auto hyps = core::attach_hypervisors(fabric, built.host_slots, 4, 12);
  const NodeId sm_node = fabric.add_ca("sm");
  fabric.connect(sm_node, 1, built.host_slots[12].leaf,
                 built.host_slots[12].port);
  sm::SubnetManager smgr(fabric, sm_node,
                         routing::make_engine(routing::EngineKind::kFatTree));
  core::VSwitchFabric vsf(smgr, hyps, core::LidScheme::kPrepopulated);
  vsf.boot();

  SplitMix64 rng(31337);
  std::vector<core::VmHandle> vms;
  std::uint64_t swap_smps = 0;
  std::uint64_t migrations = 0;
  for (int step = 0; step < 120; ++step) {
    const auto dice = rng.below(10);
    if ((dice < 5 && vsf.find_free_hypervisor()) || vms.empty()) {
      if (vsf.find_free_hypervisor()) vms.push_back(vsf.create_vm().vm);
    } else if (dice < 7) {
      const auto idx = rng.below(vms.size());
      vsf.destroy_vm(vms[idx]);
      vms.erase(vms.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const auto idx = rng.below(vms.size());
      const auto dst =
          vsf.find_free_hypervisor(vsf.vm(vms[idx]).hypervisor);
      if (dst) {
        const auto report = vsf.migrate_vm(vms[idx], *dst);
        swap_smps += report.reconfig.lft_smps;
        ++migrations;
        // §VI-B bound: m' in {1,2} per touched switch.
        EXPECT_LE(report.reconfig.lft_smps,
                  2 * report.reconfig.switches_updated);
      }
    }
  }
  EXPECT_GT(migrations, 10u);
  // Final state: every active VM reachable from every PF.
  std::vector<NodeId> pfs;
  for (const auto& h : hyps) pfs.push_back(h.pf);
  for (const auto vm : vms) {
    EXPECT_TRUE(fabric::all_reach(fabric, pfs, vsf.vm(vm).lid));
  }
  // The prepopulated scheme never grew or shrank the LID space.
  EXPECT_EQ(smgr.lids().count(), 12u /*sw*/ + 12 /*pf*/ + 1 /*sm*/ + 48);
}

TEST(IntegrationDeadlock, MigrationsKeepFatTreeRoutingDeadlockFree) {
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto v = s.vsf->create_vm(0);
  s.vsf->migrate_vm(v.vm, 7);
  s.sm->refresh_targets();
  const auto report = deadlock::analyze_routing(s.sm->routing_result());
  EXPECT_TRUE(report.deadlock_free());
}

TEST(IntegrationTransition, DrainAvoidsTransientCycleExposure) {
  // On a cyclic (ring) topology, compare the transition CDG with and
  // without the §VI-C drain. The drain variant forwards the migrated LID to
  // port 255 first, so the old and new routes never coexist.
  auto s = test::VirtualSubnet::ring(LidScheme::kDynamic);
  s.vsf->boot();
  const auto v = s.vsf->create_vm(0);

  // Snapshot old tables.
  const auto old_lfts = s.sm->routing_result().lfts;
  const auto report = s.vsf->migrate_vm(v.vm, 3);
  const auto& routing = s.sm->routing_result();

  std::vector<Lid> stable;
  for (const auto& t : routing.graph.targets) {
    if (t.lid != v.lid) stable.push_back(t.lid);
  }
  const auto transition = deadlock::analyze_transition(
      routing.graph, old_lfts, routing.lfts, {v.lid}, stable);
  // Whether or not a transient cycle exists here, the analysis must agree
  // with the drain rationale: with the LID drained (dropped everywhere),
  // the affected LID contributes no dependencies at all.
  std::vector<Lft> drained = old_lfts;
  for (auto& lft : drained) lft.set(v.lid, kDropPort);
  const auto drained_transition = deadlock::analyze_transition(
      routing.graph, drained, drained, {}, stable);
  EXPECT_FALSE(drained_transition.transient_cycle_possible);
  (void)report;
  (void)transition;
}

}  // namespace
}  // namespace ibvs
