#include <gtest/gtest.h>

#include <random>

#include "ib/lft.hpp"

namespace ibvs {
namespace {

TEST(LftBlocks, BlockArithmetic) {
  EXPECT_EQ(lft_block_of(Lid{0}), 0u);
  EXPECT_EQ(lft_block_of(Lid{63}), 0u);
  EXPECT_EQ(lft_block_of(Lid{64}), 1u);
  EXPECT_EQ(lft_block_of(Lid{127}), 1u);
  EXPECT_EQ(lft_block_of(kTopmostUnicastLid), 767u);
  // A fully populated subnet needs 768 LFT blocks per switch (§VI-A).
  EXPECT_EQ(lft_blocks_for(kTopmostUnicastLid), 768u);
}

TEST(Lft, DefaultsToDrop) {
  Lft lft(Lid{100});
  EXPECT_EQ(lft.get(Lid{1}), kDropPort);
  EXPECT_EQ(lft.get(Lid{100}), kDropPort);
  EXPECT_EQ(lft.get(Lid{60000}), kDropPort);  // out of range reads drop
  EXPECT_EQ(lft.block_count(), 2u);
  EXPECT_EQ(lft.capacity(), 128u);
}

TEST(Lft, SetAndGet) {
  Lft lft;
  lft.set(Lid{5}, 3);
  EXPECT_EQ(lft.get(Lid{5}), 3);
  lft.set(Lid{5}, 7);
  EXPECT_EQ(lft.get(Lid{5}), 7);
  EXPECT_EQ(lft.routed_count(), 1u);
}

TEST(Lft, SetRejectsNonUnicast) {
  Lft lft;
  EXPECT_THROW(lft.set(Lid{0}, 1), std::invalid_argument);
  EXPECT_THROW(lft.set(Lid{0xC000}, 1), std::invalid_argument);
  EXPECT_NO_THROW(lft.set(kTopmostUnicastLid, 1));
}

TEST(Lft, GrowsOnDemand) {
  Lft lft;
  EXPECT_EQ(lft.block_count(), 0u);
  lft.set(Lid{200}, 1);
  EXPECT_EQ(lft.block_count(), 4u);  // blocks 0..3 cover LID 200
  EXPECT_EQ(lft.get(Lid{1}), kDropPort);
}

TEST(Lft, DirtyTracking) {
  Lft lft(Lid{200});
  EXPECT_TRUE(lft.dirty_blocks().empty());
  lft.set(Lid{10}, 2);
  lft.set(Lid{70}, 2);
  lft.set(Lid{71}, 2);
  const auto dirty = lft.dirty_blocks();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0], 0u);
  EXPECT_EQ(dirty[1], 1u);
  lft.clear_dirty();
  EXPECT_TRUE(lft.dirty_blocks().empty());
  // Setting an entry to its existing value does not re-dirty the block.
  lft.set(Lid{10}, 2);
  EXPECT_TRUE(lft.dirty_blocks().empty());
}

TEST(Lft, SwapAcrossBlocksDirtiesTwoBlocks) {
  // The Fig. 5 mechanics: swapping LIDs 2 and 12 touches one block; if the
  // second LID were >= 64 it would touch two.
  Lft lft(Lid{127});
  lft.set(Lid{2}, 2);
  lft.set(Lid{12}, 4);
  lft.clear_dirty();
  const PortNum a = lft.get(Lid{2});
  const PortNum b = lft.get(Lid{12});
  lft.set(Lid{2}, b);
  lft.set(Lid{12}, a);
  EXPECT_EQ(lft.dirty_blocks().size(), 1u);  // same 64-LID block

  lft.set(Lid{100}, 5);
  lft.clear_dirty();
  const PortNum c = lft.get(Lid{100});
  lft.set(Lid{2}, c);
  lft.set(Lid{100}, b);
  EXPECT_EQ(lft.dirty_blocks().size(), 2u);  // blocks 0 and 1
}

TEST(Lft, BlockReadWrite) {
  Lft src(Lid{63});
  src.set(Lid{1}, 9);
  src.set(Lid{63}, 8);
  const auto block = src.block(0);
  ASSERT_EQ(block.size(), kLftBlockSize);
  EXPECT_EQ(block[1], 9);
  EXPECT_EQ(block[63], 8);

  Lft dst;
  dst.set_block(0, block);
  EXPECT_EQ(dst.get(Lid{1}), 9);
  EXPECT_EQ(dst.get(Lid{63}), 8);
  EXPECT_THROW((void)src.block(5), std::invalid_argument);
}

TEST(Lft, DiffBlocks) {
  Lft a(Lid{200});
  Lft b(Lid{200});
  EXPECT_TRUE(a.diff_blocks(b).empty());
  a.set(Lid{5}, 1);
  a.set(Lid{130}, 2);
  const auto diff = a.diff_blocks(b);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], 0u);
  EXPECT_EQ(diff[1], 2u);
  b.set(Lid{5}, 1);
  b.set(Lid{130}, 2);
  EXPECT_TRUE(a.diff_blocks(b).empty());
  EXPECT_TRUE(a == b);
}

TEST(Lft, ForEachDiffBlockMatchesDiffBlocks) {
  Lft a(Lid{300});
  Lft b(Lid{100});
  a.set(Lid{5}, 1);
  a.set(Lid{130}, 2);
  a.set(Lid{250}, 3);
  b.set(Lid{70}, 4);
  std::vector<std::size_t> seen;
  a.for_each_diff_block(b, [&](std::size_t blk) { seen.push_back(blk); });
  EXPECT_EQ(seen, a.diff_blocks(b));
  // Symmetric capacities: the iteration covers the larger table.
  seen.clear();
  b.for_each_diff_block(a, [&](std::size_t blk) { seen.push_back(blk); });
  EXPECT_EQ(seen, b.diff_blocks(a));
}

TEST(Lft, ForEachDirtyBlockMatchesDirtyBlocks) {
  Lft a(Lid{300});
  a.set(Lid{5}, 1);
  a.set(Lid{250}, 3);
  std::vector<std::size_t> seen;
  a.for_each_dirty_block([&](std::size_t blk) { seen.push_back(blk); });
  EXPECT_EQ(seen, a.dirty_blocks());
  a.clear_dirty();
  seen.clear();
  a.for_each_dirty_block([&](std::size_t blk) { seen.push_back(blk); });
  EXPECT_TRUE(seen.empty());
}

TEST(Lft, DiffAgainstSmallerTable) {
  Lft a(Lid{200});
  Lft b;  // empty
  a.set(Lid{130}, 2);
  const auto diff = a.diff_blocks(b);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0], 2u);
  // Symmetric view.
  EXPECT_EQ(b.diff_blocks(a), diff);
  EXPECT_FALSE(a == b);
}

TEST(Lft, ClearResetsEntries) {
  Lft a(Lid{100});
  a.set(Lid{10}, 3);
  a.clear();
  EXPECT_EQ(a.get(Lid{10}), kDropPort);
  EXPECT_EQ(a.routed_count(), 0u);
  // clear marks everything dirty (the whole table must be redistributed).
  EXPECT_EQ(a.dirty_blocks().size(), a.block_count());
}

// The word-at-a-time XOR/AND scan in for_each_diff_block must agree with a
// byte-by-byte scalar comparison on arbitrary tables — including tables of
// different capacity, where the longer table's tail diffs against the
// implicit all-drop pattern. Randomized: sparse and dense mutations, edits
// that straddle block boundaries, and edits in the non-shared tail.
TEST(Lft, DiffBlocksMatchScalarReferenceOnRandomTables) {
  std::mt19937 rng(0x1b5eed);
  for (int iter = 0; iter < 200; ++iter) {
    const Lid top_a{static_cast<std::uint16_t>(1 + rng() % 700)};
    const Lid top_b{static_cast<std::uint16_t>(1 + rng() % 700)};
    Lft a(top_a);
    Lft b(top_b);
    const auto mutate = [&](Lft& t, const Lid top, const std::size_t edits) {
      for (std::size_t i = 0; i < edits; ++i) {
        const std::uint16_t lid =
            static_cast<std::uint16_t>(1 + rng() % top.value());
        t.set(Lid{lid}, static_cast<PortNum>(rng() % 37));
      }
    };
    mutate(a, top_a, rng() % 64);
    mutate(b, top_b, rng() % 64);
    // Half the time, start b as a copy of a so most blocks compare equal
    // (the common sweep case: few dirty blocks in a mostly-stable table).
    if (rng() % 2 == 0) {
      b = a;
      mutate(b, top_a, 1 + rng() % 8);
    }

    // Scalar reference: walk every entry of every block of the longer
    // table; out-of-range entries read as kDropPort on both sides.
    const std::size_t blocks =
        std::max(a.block_count(), b.block_count());
    std::vector<std::size_t> expected;
    for (std::size_t blk = 0; blk < blocks; ++blk) {
      bool differs = false;
      for (std::size_t e = 0; e < kLftBlockSize && !differs; ++e) {
        const Lid lid{static_cast<std::uint16_t>(blk * kLftBlockSize + e)};
        differs = a.get(lid) != b.get(lid);
      }
      if (differs) expected.push_back(blk);
    }

    EXPECT_EQ(a.diff_blocks(b), expected) << "iter " << iter;
    std::vector<std::size_t> scanned;
    a.for_each_diff_block(b, [&](std::size_t blk) { scanned.push_back(blk); });
    EXPECT_EQ(scanned, expected) << "iter " << iter;
    // The diff is symmetric in which blocks differ.
    EXPECT_EQ(b.diff_blocks(a), expected) << "iter " << iter;
  }
}

TEST(Lft, SetBlockSkipsNoopWrites) {
  Lft a(Lid{63});
  a.set(Lid{1}, 4);
  a.clear_dirty();
  const std::vector<PortNum> same(a.block(0).begin(), a.block(0).end());
  a.set_block(0, same);
  EXPECT_TRUE(a.dirty_blocks().empty());
}

}  // namespace
}  // namespace ibvs
