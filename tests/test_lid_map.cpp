#include <gtest/gtest.h>

#include "ib/lid_map.hpp"

namespace ibvs {
namespace {

struct LidMapTest : ::testing::Test {
  Fabric fabric;
  LidMap lids;
  NodeId sw = kInvalidNode;
  NodeId ca1 = kInvalidNode;
  NodeId ca2 = kInvalidNode;

  void SetUp() override {
    sw = fabric.add_switch("sw", 8);
    ca1 = fabric.add_ca("ca1");
    ca2 = fabric.add_ca("ca2");
    fabric.connect(ca1, 1, sw, 1);
    fabric.connect(ca2, 1, sw, 2);
  }
};

TEST_F(LidMapTest, SequentialAssignment) {
  EXPECT_EQ(lids.assign_next(fabric, sw, 0), Lid{1});
  EXPECT_EQ(lids.assign_next(fabric, ca1, 1), Lid{2});
  EXPECT_EQ(lids.assign_next(fabric, ca2, 1), Lid{3});
  EXPECT_EQ(lids.count(), 3u);
  EXPECT_EQ(lids.top_lid(), Lid{3});
  EXPECT_EQ(fabric.node(ca1).lid(), Lid{2});
  EXPECT_EQ(fabric.node(sw).lid(), Lid{1});
}

TEST_F(LidMapTest, ExplicitAssignmentAndConflicts) {
  lids.assign(fabric, ca1, 1, Lid{100});
  EXPECT_TRUE(lids.assigned(Lid{100}));
  EXPECT_THROW(lids.assign(fabric, ca2, 1, Lid{100}), std::invalid_argument);
  EXPECT_THROW(lids.assign(fabric, ca2, 1, kInvalidLid),
               std::invalid_argument);
  EXPECT_THROW(lids.assign(fabric, ca2, 1, Lid{0xC000}),
               std::invalid_argument);
}

TEST_F(LidMapTest, ReleaseAndReuse) {
  const Lid a = lids.assign_next(fabric, ca1, 1);
  const Lid b = lids.assign_next(fabric, ca2, 1);
  lids.release(fabric, a);
  EXPECT_FALSE(lids.assigned(a));
  EXPECT_FALSE(fabric.node(ca1).lid().valid());
  EXPECT_EQ(lids.top_lid(), b);
  // The freed LID is the lowest free one and gets reused.
  EXPECT_EQ(lids.assign_next(fabric, ca1, 1), a);
}

TEST_F(LidMapTest, TopLidRecomputesDownward) {
  lids.assign(fabric, ca1, 1, Lid{10});
  lids.assign(fabric, ca2, 1, Lid{200});
  EXPECT_EQ(lids.top_lid(), Lid{200});
  EXPECT_EQ(lids.min_lft_blocks(), 4u);  // LID 200 -> blocks 0..3
  lids.release(fabric, Lid{200});
  EXPECT_EQ(lids.top_lid(), Lid{10});
  EXPECT_EQ(lids.min_lft_blocks(), 1u);
}

TEST_F(LidMapTest, MoveKeepsLidValue) {
  const Lid lid = lids.assign_next(fabric, ca1, 1);
  lids.move(fabric, lid, ca2, 1);
  EXPECT_EQ(lids.owner(lid).node, ca2);
  EXPECT_EQ(fabric.node(ca2).lid(), lid);
  EXPECT_FALSE(fabric.node(ca1).lid().valid());
}

TEST_F(LidMapTest, SwapViaTwoMovesDoesNotClobber) {
  // Regression: the §V-C1 LID swap is two move() calls touching the same
  // ports; the second must not wipe what the first wrote.
  const Lid a = lids.assign_next(fabric, ca1, 1);
  const Lid b = lids.assign_next(fabric, ca2, 1);
  lids.move(fabric, a, ca2, 1);
  lids.move(fabric, b, ca1, 1);
  EXPECT_EQ(fabric.node(ca2).lid(), a);
  EXPECT_EQ(fabric.node(ca1).lid(), b);
  EXPECT_EQ(lids.owner(a).node, ca2);
  EXPECT_EQ(lids.owner(b).node, ca1);
}

TEST_F(LidMapTest, AssignedLidsSortedList) {
  lids.assign(fabric, ca1, 1, Lid{5});
  lids.assign(fabric, ca2, 1, Lid{2});
  lids.assign(fabric, sw, 0, Lid{9});
  const auto all = lids.assigned_lids();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], Lid{2});
  EXPECT_EQ(all[1], Lid{5});
  EXPECT_EQ(all[2], Lid{9});
}

TEST_F(LidMapTest, AttachmentOfCaAndSwitch) {
  const Lid sw_lid = lids.assign_next(fabric, sw, 0);
  const Lid ca_lid = lids.assign_next(fabric, ca1, 1);
  const auto sw_attach = lids.attachment(fabric, sw_lid);
  ASSERT_TRUE(sw_attach.has_value());
  EXPECT_EQ(sw_attach->first, sw);
  EXPECT_EQ(sw_attach->second, 0);
  const auto ca_attach = lids.attachment(fabric, ca_lid);
  ASSERT_TRUE(ca_attach.has_value());
  EXPECT_EQ(ca_attach->first, sw);
  EXPECT_EQ(ca_attach->second, 1);
  EXPECT_FALSE(lids.attachment(fabric, Lid{999}).has_value());
}

TEST_F(LidMapTest, AttachmentThroughVSwitch) {
  const NodeId vsw = fabric.add_switch("vsw", 4, SwitchFlavor::kVSwitch);
  const NodeId vf = fabric.add_ca("vf", 1, CaRole::kVf);
  fabric.connect(vsw, 1, sw, 3);
  fabric.connect(vf, 1, vsw, 2);
  const Lid lid = lids.assign_next(fabric, vf, 1);
  const auto attach = lids.attachment(fabric, lid);
  ASSERT_TRUE(attach.has_value());
  EXPECT_EQ(attach->first, sw);
  EXPECT_EQ(attach->second, 3);  // the vSwitch uplink's far end
}

TEST_F(LidMapTest, ReleaseErrors) {
  EXPECT_THROW(lids.release(fabric, Lid{1}), std::invalid_argument);
  EXPECT_THROW(lids.release(fabric, kInvalidLid), std::invalid_argument);
}

TEST_F(LidMapTest, MoveErrors) {
  EXPECT_THROW(lids.move(fabric, Lid{1}, ca1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace ibvs
