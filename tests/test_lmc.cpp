// LID Mask Control (LMC) multipathing and its comparison with the
// prepopulated-VF scheme (§V-A).
#include <gtest/gtest.h>

#include <set>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

TEST(Lmc, PortOwnsAliasRange) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 4);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 1);
  LidMap lids;
  const Lid base = lids.assign_lmc_block(fabric, ca, 1, 2);  // 4 LIDs
  EXPECT_EQ(base.value() % 4, 0u);
  const Port& port = fabric.node(ca).ports[1];
  EXPECT_EQ(port.lmc, 2);
  for (std::uint16_t off = 0; off < 4; ++off) {
    EXPECT_TRUE(port.owns(Lid{static_cast<std::uint16_t>(base.value() + off)}));
    EXPECT_TRUE(lids.assigned(Lid{static_cast<std::uint16_t>(base.value() + off)}));
  }
  EXPECT_FALSE(port.owns(Lid{static_cast<std::uint16_t>(base.value() + 4)}));
  EXPECT_EQ(lids.count(), 4u);
}

TEST(Lmc, BlocksDoNotOverlapAndAlign) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 8);
  LidMap lids;
  // Fragment the space: occupy LID 2.
  const NodeId filler = fabric.add_ca("filler");
  fabric.connect(filler, 1, sw, 1);
  lids.assign(fabric, filler, 1, Lid{2});
  const NodeId a = fabric.add_ca("a");
  const NodeId b = fabric.add_ca("b");
  fabric.connect(a, 1, sw, 2);
  fabric.connect(b, 1, sw, 3);
  const Lid base_a = lids.assign_lmc_block(fabric, a, 1, 1);  // width 2
  const Lid base_b = lids.assign_lmc_block(fabric, b, 1, 1);
  EXPECT_EQ(base_a.value() % 2, 0u);
  EXPECT_EQ(base_b.value() % 2, 0u);
  // The block skipped the fragmented region around LID 2.
  EXPECT_NE(base_a.value(), 2u);
  EXPECT_NE(base_b.value(), base_a.value());
}

TEST(Lmc, MisalignedLmcRejected) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 4);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 1);
  fabric.set_lid(ca, 1, Lid{3});
  EXPECT_THROW(fabric.set_lmc(ca, 1, 1), std::invalid_argument);  // 3 % 2
  EXPECT_THROW(fabric.set_lmc(ca, 1, 9), std::invalid_argument);
  fabric.set_lid(ca, 1, Lid{4});
  EXPECT_NO_THROW(fabric.set_lmc(ca, 1, 2));
}

struct LmcFatTree {
  Fabric fabric;
  topology::Built built;
  std::vector<NodeId> hosts;
  LidMap lids;
  routing::RoutingResult result;

  explicit LmcFatTree(std::uint8_t lmc) {
    built = topology::build_two_level_fat_tree(
        fabric, topology::TwoLevelParams{.num_leaves = 2,
                                         .num_spines = 4,
                                         .hosts_per_leaf = 4,
                                         .radix = 12});
    hosts = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    for (NodeId host : hosts) lids.assign_lmc_block(fabric, host, 1, lmc);
    result = routing::make_engine(routing::EngineKind::kFatTree)
                 ->compute(fabric, lids);
  }
};

TEST(Lmc, EveryAliasIsRoutedAndVerifies) {
  LmcFatTree t(2);
  const auto report = routing::verify_routing(t.result);
  EXPECT_TRUE(report.ok);
  // 6 switches + 8 hosts x 4 aliases = 38 LIDs routed.
  EXPECT_EQ(t.lids.count(), 6u + 32u);
}

TEST(Lmc, AliasesSpreadOverSpines) {
  // The whole point of LMC: different aliases of the same port ride
  // different spines (d-mod-k keys on the LID value).
  LmcFatTree t(2);
  const auto leaf0 = t.result.graph.dense(t.built.leaves[0]);
  // Host on leaf 1: look at its 4 aliases from leaf 0's viewpoint.
  const NodeId remote = t.hosts[4];
  const Lid base = t.fabric.node(remote).lid();
  std::set<PortNum> spines_used;
  for (std::uint16_t off = 0; off < 4; ++off) {
    spines_used.insert(t.result.lfts[leaf0].get(
        Lid{static_cast<std::uint16_t>(base.value() + off)}));
  }
  EXPECT_EQ(spines_used.size(), 4u);  // all four spines
}

TEST(Lmc, TraceDeliversToAnyAlias) {
  LmcFatTree t(1);
  // Install LFTs.
  for (routing::SwitchIdx i = 0; i < t.result.graph.num_switches(); ++i) {
    Node& sw = t.fabric.node(t.result.graph.switches[i]);
    for (std::size_t b = 0; b < t.result.lfts[i].block_count(); ++b) {
      sw.lft.set_block(b, t.result.lfts[i].block(b));
    }
  }
  const Lid base = t.fabric.node(t.hosts[7]).lid();
  for (std::uint16_t off = 0; off < 2; ++off) {
    const auto trace = fabric::trace_unicast(
        t.fabric, t.hosts[0],
        Lid{static_cast<std::uint16_t>(base.value() + off)});
    EXPECT_TRUE(trace.delivered()) << "alias " << off;
    EXPECT_EQ(trace.path.back(), t.hosts[7]);
  }
}

TEST(Lmc, PrepopulatedVfsGiveMultipathWithoutSequentiality) {
  // §V-A: "imitating the LMC feature ... without being bound by the
  // limitation of the LMC that requires the LIDs to be sequential."
  // After a migration scrambles the VF LIDs of a hypervisor, the
  // prepopulated scheme still gives its VMs distinct spine paths — even
  // though their LIDs are no longer contiguous.
  auto s = test::VirtualSubnet::small(core::LidScheme::kPrepopulated, 8, 4,
                                      routing::EngineKind::kFatTree);
  s.vsf->boot();
  const auto v0 = s.vsf->create_vm(0);
  const auto v1 = s.vsf->create_vm(0);
  // Shuffle: migrate v0 away and back so its VF LIDs are non-sequential.
  s.vsf->migrate_vm(v0.vm, 7);
  s.vsf->migrate_vm(v0.vm, 0);
  const Lid l0 = s.vsf->vm(v0.vm).lid;
  const Lid l1 = s.vsf->vm(v1.vm).lid;
  EXPECT_EQ(l0, v0.lid);  // addresses survived the round trip

  // Both VMs live behind hypervisor 0 (leaf 0); check the spine choice of
  // a remote leaf for both LIDs.
  const auto& routing = s.sm->routing_result();
  const auto remote_leaf = routing.graph.dense(s.hyps[7].leaf);
  const PortNum p0 = routing.lfts[remote_leaf].get(l0);
  const PortNum p1 = routing.lfts[remote_leaf].get(l1);
  // d-mod-k with 2 spines: consecutive VF LIDs get distinct spines; the
  // migration round trip preserved the property.
  EXPECT_NE(p0, p1);
}

}  // namespace
}  // namespace ibvs
