// Transactional live migration: typed errors, rollback byte-accuracy, the
// write-ahead journal, crash-consistent SM failover, and the orchestrator's
// graceful-degradation policy.
//
// The contract under test: every migration ends kCommitted or kRolledBack —
// never in between — and an aborted migration leaves the forwarding state
// byte-identical to what it was before the transaction began, in both LID
// schemes. A master-SM death mid-LFT-batch is recovered by replaying the
// journal, and the replay's SMP stream is identical at 1 and 4 threads.
#include <gtest/gtest.h>

#include "cloud/orchestrator.hpp"
#include "core/migration_txn.hpp"
#include "inject/chaos.hpp"
#include "inject/checker.hpp"
#include "inject/injector.hpp"
#include "sm/election.hpp"
#include "telemetry/metrics.hpp"
#include "tests/helpers.hpp"
#include "util/thread_pool.hpp"

namespace ibvs {
namespace {

using test::VirtualSubnet;

/// Installed forwarding state of every physical switch, in NodeId order.
std::vector<Lft> installed_lfts(Fabric& fabric) {
  std::vector<Lft> out;
  for (const NodeId sw : fabric.switch_ids()) out.push_back(fabric.node(sw).lft);
  return out;
}

/// Runs `fn`, which must throw MigrationError, and returns its code.
template <typename Fn>
core::MigrationErrc thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const core::MigrationError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a MigrationError";
  return core::MigrationErrc::kUnknownVm;
}

struct ThreadGuard {
  explicit ThreadGuard(std::size_t threads) {
    ThreadPool::set_global_threads(threads);
  }
  ~ThreadGuard() { ThreadPool::set_global_threads(0); }
};

auto engine_factory() {
  return [] { return routing::make_engine(routing::EngineKind::kMinHop); };
}

// ---------------------------------------------------------------------------
// Journal unit behavior.

TEST(ReconfigJournal, RecordLifecycleAndTruncation) {
  sm::ReconfigJournal journal;
  sm::MigrationRecord record;
  record.vm_id = 7;
  record.vm_lid = Lid{10};
  record.src_vf = 1;
  record.dst_vf = 2;
  const auto id = journal.begin(std::move(record));
  EXPECT_EQ(journal.in_flight(), 1u);
  ASSERT_NE(journal.find(id), nullptr);
  EXPECT_EQ(journal.find(id)->state, sm::RecordState::kInFlight);
  EXPECT_FALSE(journal.find(id)->addresses_moved);

  journal.record_addresses_moved(id);
  EXPECT_TRUE(journal.find(id)->addresses_moved);

  journal.record_deltas(
      id, {{.switch_node = 3, .lid = Lid{5}, .old_port = 1, .new_port = 2}});
  ASSERT_EQ(journal.find(id)->deltas.size(), 1u);

  journal.commit(id);
  EXPECT_EQ(journal.in_flight(), 0u);
  EXPECT_EQ(journal.find(id)->state, sm::RecordState::kCommitted);

  // Truncation only drops records the vSwitch layer has reconciled.
  EXPECT_EQ(journal.truncate_reconciled(), 0u);
  journal.find(id)->reconciled = true;
  EXPECT_EQ(journal.truncate_reconciled(), 1u);
  EXPECT_EQ(journal.find(id), nullptr);
}

TEST(ReconfigJournal, RollBackMarksTerminal) {
  sm::ReconfigJournal journal;
  sm::MigrationRecord record;
  record.vm_lid = Lid{11};
  record.src_vf = 1;
  record.dst_vf = 2;
  const auto id = journal.begin(std::move(record));
  journal.roll_back(id);
  EXPECT_EQ(journal.in_flight(), 0u);
  EXPECT_EQ(journal.find(id)->state, sm::RecordState::kRolledBack);
}

TEST(ReconfigJournal, DeltaInverseRoundTrips) {
  const sm::LftDelta delta{
      .switch_node = 9, .lid = Lid{44}, .old_port = 2, .new_port = 5};
  const auto inv = delta.inverse();
  EXPECT_EQ(inv.old_port, 5);
  EXPECT_EQ(inv.new_port, 2);
  EXPECT_EQ(inv.inverse().new_port, delta.new_port);
}

// ---------------------------------------------------------------------------
// Typed validation errors (the satellite bugfix: bad destinations and full
// hypervisors must fail up front, with a machine-readable code).

TEST(MigrationErrors, BeginMigrationValidates) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, /*num_hyps=*/4,
                                /*vfs=*/1);
  EXPECT_EQ(thrown_code([&] { s.vsf->begin_migration({1}, 1); }),
            core::MigrationErrc::kNotBooted);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  s.vsf->create_vm(1);  // hypervisor 1 is now full (1 VF)

  EXPECT_EQ(thrown_code([&] { s.vsf->begin_migration({9999}, 1); }),
            core::MigrationErrc::kUnknownVm);
  EXPECT_EQ(thrown_code([&] { s.vsf->begin_migration(vm.vm, 99); }),
            core::MigrationErrc::kBadDestination);
  EXPECT_EQ(thrown_code([&] { s.vsf->begin_migration(vm.vm, 0); }),
            core::MigrationErrc::kSameHypervisor);
  EXPECT_EQ(thrown_code([&] { s.vsf->begin_migration(vm.vm, 1); }),
            core::MigrationErrc::kNoFreeVf);
  // Validation sends nothing and journals nothing in flight.
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
}

TEST(MigrationErrors, OrchestratorMigrateValidates) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, /*num_hyps=*/4,
                                /*vfs=*/1);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = cloud.launch_vms(2);  // fills hypervisors 0 and 1

  // Regression: these used to be an unchecked vector index / a generic
  // failure deep inside the flow.
  EXPECT_EQ(thrown_code([&] { cloud.migrate(vms[0], 99); }),
            core::MigrationErrc::kBadDestination);
  EXPECT_EQ(thrown_code([&] { cloud.migrate(vms[0], 1); }),
            core::MigrationErrc::kNoFreeVf);
  // Still a std::invalid_argument for callers that predate the typed code.
  EXPECT_THROW(cloud.migrate(vms[0], 99), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Rollback restores the exact pre-transaction bytes, both schemes.

class TxnRollback : public ::testing::TestWithParam<core::LidScheme> {};

TEST_P(TxnRollback, AbortedMigrationRestoresLftBytes) {
  auto s = VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  s.vsf->create_vm(3);  // unrelated occupancy that must survive untouched

  const auto installed_before = installed_lfts(s.fabric);
  const auto master_before = s.sm->routing_result().lfts;
  const NodeId vf_before = s.vsf->vm_node(vm.vm);

  // Abort mid-batch: addresses moved, some LFT SMPs sent, then the
  // reconfiguration is cut short.
  auto txn = s.vsf->begin_migration(vm.vm, 3);
  s.vsf->txn_move_addresses(txn);
  EXPECT_EQ(thrown_code([&] {
              s.vsf->txn_apply_lfts(txn, {.abort_after_smps = 2});
            }),
            core::MigrationErrc::kInterrupted);
  s.vsf->txn_rollback(txn);

  EXPECT_EQ(txn.state, core::TxnState::kRolledBack);
  EXPECT_TRUE(txn.terminal());
  EXPECT_GE(txn.rollback_smps, 1u);
  // Byte-identical forwarding state, master and installed.
  EXPECT_EQ(s.sm->routing_result().lfts, master_before);
  EXPECT_EQ(installed_lfts(s.fabric), installed_before);
  // The VM runs at the source again, on the same VF.
  EXPECT_EQ(s.vsf->vm(vm.vm).hypervisor, 0u);
  EXPECT_EQ(s.vsf->vm_node(vm.vm), vf_before);
  // Journal record terminal; nothing in flight.
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
  EXPECT_EQ(s.vsf->journal().find(txn.id)->state, sm::RecordState::kRolledBack);

  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).clean());
  // The fabric is fully usable: the same migration succeeds afterwards.
  const auto report = s.vsf->migrate_vm(vm.vm, 3);
  EXPECT_EQ(report.dst_hypervisor, 3u);
}

TEST_P(TxnRollback, FullyAppliedThenRolledBackRestoresLftBytes) {
  // Worst case for the inverse-delta path: every LFT update (drain pass
  // included) already went out before the abort decision.
  auto s = VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(1);

  const auto installed_before = installed_lfts(s.fabric);
  const auto master_before = s.sm->routing_result().lfts;

  auto txn = s.vsf->begin_migration(vm.vm, 4, {.drain_first = true});
  s.vsf->txn_move_addresses(txn);
  s.vsf->txn_apply_lfts(txn);
  EXPECT_GE(txn.stats.lft_smps, 1u);
  s.vsf->txn_rollback(txn);

  EXPECT_EQ(s.sm->routing_result().lfts, master_before);
  EXPECT_EQ(installed_lfts(s.fabric), installed_before);
  EXPECT_EQ(s.vsf->vm(vm.vm).hypervisor, 1u);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).clean());
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, TxnRollback,
                         ::testing::Values(core::LidScheme::kPrepopulated,
                                           core::LidScheme::kDynamic),
                         [](const auto& info) {
                           return info.param == core::LidScheme::kPrepopulated
                                      ? "Prepopulated"
                                      : "Dynamic";
                         });

TEST(TxnPhases, RollbackIncrementsTelemetry) {
  auto& reg = telemetry::Registry::global();
  auto& rolled_back =
      reg.counter("ibvs_migrations_total", {{"outcome", "rolled_back"}});
  auto& committed =
      reg.counter("ibvs_migrations_total", {{"outcome", "committed"}});
  const auto rb_before = rolled_back.value();
  const auto c_before = committed.value();

  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  auto txn = s.vsf->begin_migration(vm.vm, 3);
  s.vsf->txn_move_addresses(txn);
  s.vsf->txn_apply_lfts(txn);
  s.vsf->txn_rollback(txn);
  EXPECT_EQ(rolled_back.value(), rb_before + 1);

  s.vsf->migrate_vm(vm.vm, 3);
  EXPECT_EQ(committed.value(), c_before + 1);
}

TEST(TxnPhases, SwitchUnreachableAbortsAndRollsBack) {
  // A switch in the update set becomes SM-unreachable mid-transaction: with
  // require_reachable the apply must throw kSwitchUnreachable instead of
  // sending into the void, and the rollback must restore the master tables.
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  const auto master_before = s.sm->routing_result().lfts;

  // Directed SMPs so the address restores stay deliverable around the hole.
  auto txn = s.vsf->begin_migration(vm.vm, 3,
                                    {.smp_routing = SmpRouting::kDirected});
  s.vsf->txn_move_addresses(txn);

  inject::FaultInjector injector(s.fabric, /*seed=*/1);
  injector.attach_transport(&s.sm->transport());  // hop cache invalidation
  const NodeId spine = s.built.spines.front();
  injector.kill_node(spine);
  EXPECT_EQ(thrown_code([&] {
              s.vsf->txn_apply_lfts(txn, {.require_reachable = true});
            }),
            core::MigrationErrc::kSwitchUnreachable);
  s.vsf->txn_rollback(txn);

  EXPECT_EQ(txn.state, core::TxnState::kRolledBack);
  EXPECT_EQ(s.sm->routing_result().lfts, master_before);
  EXPECT_EQ(s.vsf->vm(vm.vm).hypervisor, 0u);

  // Heal the fabric and prove it consistent end to end.
  injector.revive_node(spine);
  s.sm->reconverge();
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).clean());
}

// ---------------------------------------------------------------------------
// Orchestrator policy: timeouts, destination death, re-placement.

TEST(MigrateTxn, CommitsOnTheHappyPath) {
  auto s = VirtualSubnet::small(core::LidScheme::kPrepopulated);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = cloud.launch_vms(2);

  const auto report = cloud.migrate_txn(vms[0], 5);
  EXPECT_EQ(report.outcome, cloud::TxnOutcome::kCommitted);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_EQ(report.dst_hypervisor, 5u);
  EXPECT_FALSE(report.replaced);
  EXPECT_TRUE(report.error.empty());
  EXPECT_EQ(s.vsf->vm(vms[0]).hypervisor, 5u);
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
}

TEST(MigrateTxn, StepTimeoutRollsBack) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = cloud.launch_vms(1);
  const auto installed_before = installed_lfts(s.fabric);

  cloud::TxnPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_s = 0.0;
  policy.reconfig_timeout_us = 1e-6;  // impossible budget: every attempt aborts
  const auto report = cloud.migrate_txn(vms[0], 4, {}, policy);

  EXPECT_EQ(report.outcome, cloud::TxnOutcome::kRolledBack);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_NE(report.error.find("step-timeout"), std::string::npos);
  EXPECT_EQ(s.vsf->vm(vms[0]).hypervisor, 0u);
  EXPECT_EQ(installed_lfts(s.fabric), installed_before);
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).clean());
}

TEST(MigrateTxn, DeadDestinationIsReplaced) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = cloud.launch_vms(1);

  inject::FaultInjector injector(s.fabric, /*seed=*/3);
  const std::size_t dst = 4;
  bool killed = false;
  cloud::TxnPolicy policy;
  policy.backoff_base_s = 0.0;
  policy.on_step = [&](core::TxnState state, const core::MigrationTxn& txn) {
    if (killed || state != core::TxnState::kCopied) return;
    if (txn.dst_hypervisor != dst) return;
    injector.kill_node(s.hyps[dst].vswitch);
    killed = true;
  };
  const auto report = cloud.migrate_txn(vms[0], dst, {}, policy);

  EXPECT_TRUE(killed);
  EXPECT_EQ(report.outcome, cloud::TxnOutcome::kCommitted);
  EXPECT_TRUE(report.replaced);
  EXPECT_NE(report.dst_hypervisor, dst);
  EXPECT_GE(report.attempts, 2u);
  EXPECT_EQ(s.vsf->vm(vms[0]).hypervisor, report.dst_hypervisor);
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
}

TEST(MigrateTxn, DeadDestinationWithoutReplacementRollsBack) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = cloud.launch_vms(1);
  const auto installed_before = installed_lfts(s.fabric);

  inject::FaultInjector injector(s.fabric, /*seed=*/3);
  const std::size_t dst = 4;
  bool killed = false;
  cloud::TxnPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_s = 0.0;
  policy.allow_replacement = false;
  policy.on_step = [&](core::TxnState state, const core::MigrationTxn&) {
    if (killed || state != core::TxnState::kCopied) return;
    injector.kill_node(s.hyps[dst].vswitch);
    killed = true;
  };
  const auto report = cloud.migrate_txn(vms[0], dst, {}, policy);

  EXPECT_EQ(report.outcome, cloud::TxnOutcome::kRolledBack);
  EXPECT_NE(report.error.find("destination-detached"), std::string::npos);
  EXPECT_EQ(s.vsf->vm(vms[0]).hypervisor, 0u);
  EXPECT_EQ(installed_lfts(s.fabric), installed_before);
}

TEST(MigrateTxn, PlanExecutionIsolatesTheFailedMember) {
  // One member of a parallel round targets a full hypervisor and may not
  // re-place; it fails alone while the rest of the round commits.
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, /*num_hyps=*/8,
                                /*vfs=*/1);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = cloud.launch_vms(3);  // hypervisors 0, 1, 2
  s.vsf->create_vm(3);                   // hypervisor 3 is now full

  cloud::ParallelPlan plan = cloud.plan_parallel({
      {vms[0], 5},
      {vms[1], 6},
      {vms[2], 3},  // no free VF: kFailed, never opens a transaction
  });
  cloud::TxnPolicy policy;
  policy.backoff_base_s = 0.0;
  policy.allow_replacement = false;
  const auto exec = cloud.execute_txn(plan, {}, policy);

  EXPECT_EQ(exec.committed, 2u);
  EXPECT_EQ(exec.failed, 1u);
  EXPECT_EQ(exec.rolled_back, 0u);
  EXPECT_EQ(s.vsf->vm(vms[0]).hypervisor, 5u);
  EXPECT_EQ(s.vsf->vm(vms[1]).hypervisor, 6u);
  EXPECT_EQ(s.vsf->vm(vms[2]).hypervisor, 2u);  // untouched
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Crash-consistent recovery: journal replay after a master death.

TEST(JournalRecovery, ReplayCompletesInterruptedMigration) {
  for (const auto scheme :
       {core::LidScheme::kPrepopulated, core::LidScheme::kDynamic}) {
    auto s = VirtualSubnet::small(scheme);
    s.vsf->boot();
    const auto vm = s.vsf->create_vm(0);

    auto txn = s.vsf->begin_migration(vm.vm, 3);
    s.vsf->txn_move_addresses(txn);
    EXPECT_EQ(thrown_code([&] {
                s.vsf->txn_apply_lfts(txn, {.abort_after_smps = 2});
              }),
              core::MigrationErrc::kInterrupted);
    ASSERT_EQ(s.vsf->journal().in_flight(), 1u);

    // Addresses moved + deltas journaled + destination reachable: the
    // recovery decision is roll-forward, and it must leave the fabric as if
    // the batch had never been interrupted.
    const auto rec = s.vsf->journal().recover(*s.sm);
    EXPECT_EQ(rec.in_flight, 1u);
    EXPECT_EQ(rec.rolled_forward, 1u);
    EXPECT_EQ(rec.rolled_back, 0u);
    EXPECT_TRUE(rec.redistribution.converged);

    const auto rr = s.vsf->reconcile_with_journal();
    EXPECT_EQ(rr.committed, 1u);
    EXPECT_EQ(s.vsf->vm(vm.vm).hypervisor, 3u);
    const inject::FabricChecker checker(*s.sm);
    EXPECT_TRUE(checker.check(s.vsf.get()).clean());

    // Idempotent: a second recovery finds nothing and sends nothing.
    const auto again = s.vsf->journal().recover(*s.sm);
    EXPECT_EQ(again.in_flight, 0u);
    EXPECT_EQ(again.redistribution.smps, 0u);
  }
}

TEST(JournalRecovery, ReplayRollsBackWhenAddressesNeverMoved) {
  // Interrupted before step (a): nothing reached the fabric, so recovery
  // must choose rollback and restore the source attachment.
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);

  auto txn = s.vsf->begin_migration(vm.vm, 3);
  ASSERT_EQ(s.vsf->journal().in_flight(), 1u);
  // The transaction is abandoned here (orchestrator crash before step a).

  const auto rec = s.vsf->journal().recover(*s.sm);
  EXPECT_EQ(rec.in_flight, 1u);
  EXPECT_EQ(rec.rolled_back, 1u);
  const auto rr = s.vsf->reconcile_with_journal();
  EXPECT_EQ(rr.rolled_back, 1u);
  EXPECT_EQ(s.vsf->vm(vm.vm).hypervisor, 0u);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).clean());
  (void)txn;
}

TEST(JournalRecovery, MasterDeathMidBatchFailsOverViaElection) {
  // The full §IV story: two SM candidates, the master dies with an LFT
  // batch half-sent, the standby promoted by SmElection replays the journal
  // right after its takeover sweep, and the vSwitch layer reconciles its
  // bookkeeping with the recovered outcome.
  auto s = VirtualSubnet::small(core::LidScheme::kPrepopulated);
  const auto& slot = s.built.host_slots[9];
  const NodeId standby = s.fabric.add_ca("standby-sm");
  s.fabric.connect(standby, 1, slot.leaf, slot.port);

  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.sm_node, 9);
  election.add_candidate(standby, 5);
  election.elect();
  election.master_sweep();

  core::VSwitchFabric vsf(*election.master_sm(), s.hyps,
                          core::LidScheme::kPrepopulated);
  election.attach_journal(&vsf.journal());
  vsf.boot();
  const auto vm = vsf.create_vm(0);

  auto txn = vsf.begin_migration(vm.vm, 3);
  vsf.txn_move_addresses(txn);
  EXPECT_EQ(thrown_code([&] {
              vsf.txn_apply_lfts(txn, {.abort_after_smps = 1});
            }),
            core::MigrationErrc::kInterrupted);

  // The master dies mid-batch; a poll elects the standby, which sweeps and
  // replays the in-flight record.
  election.fail_candidate(0);
  const auto report = election.poll();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 1u);
  EXPECT_EQ(report.journal_recovery.in_flight, 1u);
  EXPECT_EQ(report.journal_recovery.rolled_forward, 1u);

  vsf.adopt_subnet_manager(*election.master_sm());
  const auto rr = vsf.reconcile_with_journal();
  EXPECT_EQ(rr.committed, 1u);
  EXPECT_EQ(vsf.vm(vm.vm).hypervisor, 3u);
  EXPECT_EQ(vsf.journal().in_flight(), 0u);

  const inject::FabricChecker checker(*election.master_sm());
  EXPECT_TRUE(checker.check(&vsf).clean());
}

TEST(JournalRecovery, ReplayStreamMatchesSingleThreaded) {
  // The determinism contract extends to recovery: the journal replay's SMP
  // stream (order included) is identical at 1 and 4 threads.
  std::vector<Smp> streams[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
    s.vsf->boot();
    const auto vm = s.vsf->create_vm(0);
    auto txn = s.vsf->begin_migration(vm.vm, 3);
    s.vsf->txn_move_addresses(txn);
    try {
      s.vsf->txn_apply_lfts(txn, {.abort_after_smps = 2});
      FAIL() << "apply was not interrupted";
    } catch (const core::MigrationError& e) {
      EXPECT_EQ(e.code(), core::MigrationErrc::kInterrupted);
    }
    s.sm->transport().set_smp_tap(&streams[run]);
    const auto rec = s.vsf->journal().recover(*s.sm);
    s.sm->transport().set_smp_tap(nullptr);
    EXPECT_EQ(rec.rolled_forward, 1u);
    EXPECT_EQ(s.vsf->reconcile_with_journal().committed, 1u);
    EXPECT_EQ(s.vsf->vm(vm.vm).hypervisor, 3u);
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
}

// ---------------------------------------------------------------------------
// Chaos with migration faults: terminal outcomes, clean checker, and a
// seed-reproducible digest.

TEST(ChaosMigrationFaults, EveryTransactionTerminalAndReproducible) {
  std::uint64_t digests[2] = {0, 1};
  for (int run = 0; run < 2; ++run) {
    auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
    s.vsf->boot();
    cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
    cloud.launch_vms(s.hyps.size());
    inject::FaultInjector injector(s.fabric, /*seed=*/9);
    inject::ChaosConfig config;
    config.seed = 9;
    config.steps = 16;
    config.mad_faults.drop_probability = 0.02;
    config.weight_kill_dst_mid_migration = 3;
    config.weight_kill_master_mid_reconfig = 3;
    const auto report = inject::run_chaos(cloud, injector, config);

    EXPECT_EQ(report.checker_violations, 0u);
    EXPECT_TRUE(report.all_converged);
    // The fault events fired and every one of them ended terminal.
    EXPECT_GE(report.migration_commits + report.migration_rollbacks, 1u);
    EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
    digests[run] = report.digest;
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace ibvs
