// Analytical model: equations (1)-(5) and Table I closed forms.
#include <gtest/gtest.h>

#include "model/cost.hpp"

namespace ibvs {
namespace {

TEST(CostModel, Equation2LftDistribution) {
  // n=54, m=11 (the 648-node tree), k+r scaled: LFTDt = n*m*(k+r).
  const model::CostParams p{.n = 54, .m = 11, .k_us = 3.0, .r_us = 2.0};
  EXPECT_DOUBLE_EQ(model::lft_distribution_us(p), 54 * 11 * 5.0);
}

TEST(CostModel, Equation3FullReconfiguration) {
  const model::CostParams p{.n = 10, .m = 2, .k_us = 1.0, .r_us = 1.0};
  EXPECT_DOUBLE_EQ(model::full_reconfiguration_us(1000.0, p), 1000.0 + 40.0);
}

TEST(CostModel, Equation4And5VSwitchReconfiguration) {
  // vSwitch RCt = n' * m' * (k + r); destination routing drops r.
  EXPECT_DOUBLE_EQ(model::vswitch_reconfiguration_us(5, 2, 3.0, 2.0),
                   5 * 2 * 5.0);
  EXPECT_DOUBLE_EQ(model::vswitch_reconfiguration_destrouted_us(5, 2, 3.0),
                   5 * 2 * 3.0);
  // Best case of the paper: a single SMP.
  EXPECT_DOUBLE_EQ(model::vswitch_reconfiguration_destrouted_us(1, 1, 3.0),
                   3.0);
}

TEST(CostModel, InLargeSubnetsVSwitchRcIsFarBelowFullRc) {
  // The paper's headline inequality: vSwitch_RCt << RCt, since PCt
  // dominates and the SMP count collapses from n*m to n'*m'.
  const model::CostParams p{.n = 1620, .m = 208, .k_us = 5.0, .r_us = 3.0};
  const double full = model::full_reconfiguration_us(67e6, p);  // PCt = 67 s
  const double vswitch =
      model::vswitch_reconfiguration_destrouted_us(1620, 2, 5.0);
  EXPECT_LT(vswitch, full / 1000.0);
}

TEST(CostModel, PipeliningDividesSerialTime) {
  EXPECT_DOUBLE_EQ(model::pipelined_us(100.0, 1), 100.0);
  EXPECT_DOUBLE_EQ(model::pipelined_us(100.0, 4), 25.0);
  EXPECT_DOUBLE_EQ(model::pipelined_us(100.0, 0), 100.0);
}

TEST(Table1, PaperRowsReproduceExactly) {
  const auto rows = model::table1_paper_rows();
  ASSERT_EQ(rows.size(), 4u);

  // | nodes | switches | LIDs | blocks | full RC | max swap |
  EXPECT_EQ(rows[0].lids, 360u);
  EXPECT_EQ(rows[0].min_lft_blocks, 6u);
  EXPECT_EQ(rows[0].min_smps_full_rc, 216u);
  EXPECT_EQ(rows[0].max_smps_swap, 72u);

  EXPECT_EQ(rows[1].lids, 702u);
  EXPECT_EQ(rows[1].min_lft_blocks, 11u);
  EXPECT_EQ(rows[1].min_smps_full_rc, 594u);
  EXPECT_EQ(rows[1].max_smps_swap, 108u);

  EXPECT_EQ(rows[2].lids, 6804u);
  EXPECT_EQ(rows[2].min_lft_blocks, 107u);
  EXPECT_EQ(rows[2].min_smps_full_rc, 104004u);
  EXPECT_EQ(rows[2].max_smps_swap, 1944u);

  EXPECT_EQ(rows[3].lids, 13284u);
  EXPECT_EQ(rows[3].min_lft_blocks, 208u);
  EXPECT_EQ(rows[3].min_smps_full_rc, 336960u);
  EXPECT_EQ(rows[3].max_smps_swap, 3240u);

  for (const auto& row : rows) {
    EXPECT_EQ(row.min_smps_vswitch, 1u);  // best case: subnet-size agnostic
    EXPECT_EQ(row.max_smps_copy, row.switches);
  }
}

TEST(Table1, SavingsGrowWithSubnetSize) {
  // §VII-C: 324 nodes -> max swap is 33.3% of full; 11664 -> 0.96%.
  const auto rows = model::table1_paper_rows();
  const double small = static_cast<double>(rows[0].max_smps_swap) /
                       static_cast<double>(rows[0].min_smps_full_rc);
  const double large = static_cast<double>(rows[3].max_smps_swap) /
                       static_cast<double>(rows[3].min_smps_full_rc);
  EXPECT_NEAR(small, 0.333, 0.001);
  EXPECT_NEAR(large, 0.0096, 0.0002);
  EXPECT_LT(large, small);
}

TEST(Table1, FullyPopulatedSubnetNeeds768Blocks) {
  // §VII-C worst case: one node on the topmost unicast LID forces the whole
  // 768-block table.
  const auto row = model::table1_row(48000, 1151);
  EXPECT_EQ(row.lids, 49151u);
  EXPECT_EQ(row.min_lft_blocks, 768u);
}

TEST(PrepopulatedLimits, PaperSizingExample) {
  // §V-A: 16 VFs -> 17 LIDs per hypervisor -> 2891 hypervisors, 46256 VMs.
  const auto limits = model::prepopulated_limits(16);
  EXPECT_EQ(limits.lids_per_hypervisor, 17u);
  EXPECT_EQ(limits.max_hypervisors, 2891u);
  EXPECT_EQ(limits.max_vms, 46256u);
}

TEST(PrepopulatedLimits, DegenerateCases) {
  const auto none = model::prepopulated_limits(0);
  EXPECT_EQ(none.max_vms, 0u);
  const auto max = model::prepopulated_limits(126);
  EXPECT_EQ(max.lids_per_hypervisor, 127u);
  EXPECT_EQ(max.max_hypervisors, 49151u / 127u);
}

}  // namespace
}  // namespace ibvs
