// Multicast groups, spanning trees, MFT distribution — and multicast across
// vSwitch live migration (the companion problem the paper leaves open).
#include <gtest/gtest.h>

#include <algorithm>

#include "fabric/trace.hpp"
#include "sm/multicast.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

TEST(MftPrimitive, MaskOperations) {
  PortMask mask;
  EXPECT_TRUE(mask.empty());
  mask.set(3);
  mask.set(17);
  mask.set(200);
  EXPECT_TRUE(mask.test(3));
  EXPECT_TRUE(mask.test(200));
  EXPECT_FALSE(mask.test(4));
  EXPECT_EQ(mask.ports(), (std::vector<PortNum>{3, 17, 200}));
  mask.clear(17);
  EXPECT_FALSE(mask.test(17));
  // Position slices: port 3 lives in position 0, port 17 in position 1.
  PortMask two;
  two.set(3);
  two.set(17);
  EXPECT_NE(two.position_bits(0), 0);
  EXPECT_NE(two.position_bits(1), 0);
  EXPECT_EQ(two.position_bits(2), 0);
}

TEST(MftPrimitive, TableAndDiff) {
  Mft a;
  Mft b;
  const Lid m1{kFirstMulticastLid};
  const Lid m2{static_cast<std::uint16_t>(kFirstMulticastLid + 40)};
  EXPECT_TRUE(a.diff_blocks(b, 36).empty());

  PortMask mask;
  mask.set(2);
  a.set(m1, mask);
  auto diff = a.diff_blocks(b, 36);
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_EQ(diff[0].first, 0u);   // block 0
  EXPECT_EQ(diff[0].second, 0);   // position 0 (port 2)

  PortMask high;
  high.set(20);  // position 1
  a.set(m2, high);
  diff = a.diff_blocks(b, 36);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[1].first, 1u);  // MLID +40 -> block 1

  b.set(m1, mask);
  b.set(m2, high);
  EXPECT_TRUE(a.diff_blocks(b, 36).empty());
  // Erase via empty mask.
  a.set(m1, PortMask{});
  EXPECT_EQ(a.size(), 1u);
  EXPECT_THROW((void)a.get(Lid{5}), std::invalid_argument);  // not an MLID
}

struct McTest : ::testing::Test {
  test::PhysicalSubnet s = test::PhysicalSubnet::small_fat_tree();
  std::unique_ptr<sm::McGroupManager> mc;

  void SetUp() override {
    s.sm->full_sweep();
    mc = std::make_unique<sm::McGroupManager>(*s.sm);
  }

  Lid lid_of(std::size_t host) const {
    return s.fabric.node(s.hosts[host]).lid();
  }
};

TEST_F(McTest, GroupLifecycle) {
  const Lid mlid = mc->create_group(Guid{0xAA});
  EXPECT_TRUE(is_multicast(mlid));
  mc->join(mlid, lid_of(0));
  mc->join(mlid, lid_of(5));
  EXPECT_EQ(mc->group(mlid).members.size(), 2u);
  mc->leave(mlid, lid_of(0));
  EXPECT_EQ(mc->group(mlid).members.size(), 1u);
  EXPECT_THROW(mc->leave(mlid, lid_of(0)), std::invalid_argument);
  EXPECT_THROW(mc->join(mlid, Lid{999}), std::invalid_argument);
  EXPECT_THROW((void)mc->group(Lid{0xC0FF}), std::invalid_argument);
}

TEST_F(McTest, DeliveryToExactlyTheMembers) {
  const Lid mlid = mc->create_group(Guid{0xAB});
  // Members on three different leaves.
  mc->join(mlid, lid_of(0));
  mc->join(mlid, lid_of(4));
  mc->join(mlid, lid_of(9));
  const auto dist = mc->distribute();
  EXPECT_GT(dist.smps, 0u);
  EXPECT_GT(dist.switches_touched, 0u);

  for (const std::size_t sender : {0, 4, 9}) {
    const auto delivered =
        fabric::trace_multicast(s.fabric, s.hosts[sender], mlid);
    std::vector<NodeId> expected{s.hosts[0], s.hosts[4], s.hosts[9]};
    // The sender's own copy goes out and comes back only if the tree loops
    // it; IB switches never reflect on the ingress, so the sender is not
    // in the delivery set unless co-located with another member's switch.
    for (const NodeId got : delivered) {
      EXPECT_TRUE(std::find(expected.begin(), expected.end(), got) !=
                  expected.end())
          << "non-member " << s.fabric.node(got).name << " got a copy";
    }
    // All *other* members receive it.
    for (const NodeId member : expected) {
      if (member == s.hosts[sender]) continue;
      EXPECT_TRUE(std::find(delivered.begin(), delivered.end(), member) !=
                  delivered.end());
    }
  }
}

TEST_F(McTest, SameLeafMembersUseOnlyTheLeaf) {
  const Lid mlid = mc->create_group(Guid{0xAC});
  mc->join(mlid, lid_of(0));
  mc->join(mlid, lid_of(1));  // hosts 0..2 share leaf 0
  const auto dist = mc->distribute();
  EXPECT_EQ(dist.switches_touched, 1u);  // only the shared leaf
  const auto delivered = fabric::trace_multicast(s.fabric, s.hosts[0], mlid);
  EXPECT_EQ(delivered, (std::vector<NodeId>{s.hosts[1]}));
}

TEST_F(McTest, DistributionIsDiffBasedAndIdempotent) {
  const Lid mlid = mc->create_group(Guid{0xAD});
  mc->join(mlid, lid_of(0));
  mc->join(mlid, lid_of(11));
  const auto first = mc->distribute();
  EXPECT_GT(first.smps, 0u);
  const auto again = mc->distribute();
  EXPECT_EQ(again.smps, 0u);
  // Leaving shrinks the tree: only the switches whose masks change get SMPs.
  mc->leave(mlid, lid_of(11));
  const auto shrink = mc->distribute();
  EXPECT_GT(shrink.smps, 0u);
  EXPECT_LE(shrink.smps, first.smps);
}

TEST_F(McTest, MultipleGroupsCoexist) {
  const Lid a = mc->create_group(Guid{0xA1});
  const Lid b = mc->create_group(Guid{0xA2});
  EXPECT_NE(a, b);
  mc->join(a, lid_of(0));
  mc->join(a, lid_of(3));
  mc->join(b, lid_of(6));
  mc->join(b, lid_of(9));
  mc->distribute();
  const auto da = fabric::trace_multicast(s.fabric, s.hosts[0], a);
  EXPECT_EQ(da, (std::vector<NodeId>{s.hosts[3]}));
  const auto db = fabric::trace_multicast(s.fabric, s.hosts[6], b);
  EXPECT_EQ(db, (std::vector<NodeId>{s.hosts[9]}));
}

TEST(McVSwitch, MembershipSurvivesLiveMigration) {
  // The extension scenario: a VM in a multicast group live-migrates. Its
  // LID (the group member key!) is unchanged — only the attachment moved,
  // so a tree recompute + diff distribution restores multicast delivery.
  auto s = test::VirtualSubnet::small(core::LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto vm1 = s.vsf->create_vm(0);
  const auto vm2 = s.vsf->create_vm(4);

  sm::McGroupManager mc(*s.sm);
  const Lid mlid = mc.create_group(Guid{0xBEEF});
  mc.join(mlid, vm1.lid);
  mc.join(mlid, vm2.lid);
  mc.distribute();

  const NodeId vm1_node = s.vsf->vm_node(vm1.vm);
  auto delivered = fabric::trace_multicast(s.fabric, vm1_node, mlid);
  EXPECT_TRUE(std::find(delivered.begin(), delivered.end(),
                        s.vsf->vm_node(vm2.vm)) != delivered.end());

  // Migrate vm2 to another leaf; unicast reconfig runs as usual, then the
  // multicast manager refreshes the trees of vm2's groups.
  s.vsf->migrate_vm(vm2.vm, 7);
  mc.refresh_after_move(vm2.lid);
  const auto dist = mc.distribute();
  EXPECT_GT(dist.smps, 0u);

  delivered = fabric::trace_multicast(s.fabric, s.vsf->vm_node(vm1.vm), mlid);
  EXPECT_TRUE(std::find(delivered.begin(), delivered.end(),
                        s.vsf->vm_node(vm2.vm)) != delivered.end())
      << "multicast lost the migrated member";
  // And the reverse direction.
  delivered = fabric::trace_multicast(s.fabric, s.vsf->vm_node(vm2.vm), mlid);
  EXPECT_TRUE(std::find(delivered.begin(), delivered.end(),
                        s.vsf->vm_node(vm1.vm)) != delivered.end());
}

TEST(McVSwitch, IntraLeafMigrationCostsFewMftSlices) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm1 = s.vsf->create_vm(0);
  const auto vm2 = s.vsf->create_vm(3);
  sm::McGroupManager mc(*s.sm);
  const Lid mlid = mc.create_group(Guid{0xCAFE});
  mc.join(mlid, vm1.lid);
  mc.join(mlid, vm2.lid);
  mc.distribute();

  // Intra-leaf move of vm1 (hyp 0 -> 1, same leaf).
  s.vsf->migrate_vm(vm1.vm, 1);
  mc.refresh_after_move(vm1.lid);
  const auto dist = mc.distribute();
  // Only the leaf's delivery port changed: a single MFT slice.
  EXPECT_LE(dist.switches_touched, 1u);
  EXPECT_LE(dist.smps, 1u);
}

}  // namespace
}  // namespace ibvs
