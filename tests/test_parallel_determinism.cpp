// Determinism contract of the parallel sweep fast path.
//
// The diff/extraction phases of LFT distribution, DFSSSP deadlock removal,
// and the fabric checker run on the global thread pool — but the observable
// outputs must be byte-identical to a single-threaded run: the SMP stream
// (order included), the computed tables, the per-destination VLs, the
// checker report, and the chaos digest. These tests pin that contract by
// running the same scenario at 1 and 4 threads and comparing everything.
#include <gtest/gtest.h>

#include "fabric/credit_sim.hpp"
#include "inject/chaos.hpp"
#include "inject/checker.hpp"
#include "perf/int_collector.hpp"
#include "tests/helpers.hpp"
#include "util/thread_pool.hpp"

namespace ibvs {
namespace {

using test::PhysicalSubnet;
using test::VirtualSubnet;

/// Restores the default global pool sizing when a test exits.
struct ThreadGuard {
  explicit ThreadGuard(std::size_t threads) {
    ThreadPool::set_global_threads(threads);
  }
  ~ThreadGuard() { ThreadPool::set_global_threads(0); }
};

/// Full sweep with every SMP recorded.
std::vector<Smp> sweep_stream(PhysicalSubnet& s) {
  std::vector<Smp> stream;
  s.sm->transport().set_smp_tap(&stream);
  s.sm->full_sweep();
  s.sm->transport().set_smp_tap(nullptr);
  return stream;
}

TEST(ParallelDeterminism, SweepSmpStreamMatchesSingleThreaded) {
  std::vector<Smp> streams[2];
  std::vector<Lft> lfts[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree();
    streams[run] = sweep_stream(s);
    for (const NodeId sw : s.fabric.switch_ids()) {
      lfts[run].push_back(s.fabric.node(sw).lft);
    }
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(lfts[0], lfts[1]);
}

TEST(ParallelDeterminism, ReconvergeStreamMatchesSingleThreaded) {
  std::vector<Smp> streams[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    // Cut one leaf-spine cable and watch the recovery stream.
    const NodeId spine = s.built.spines.front();
    s.fabric.disconnect(spine, 1);
    s.sm->transport().invalidate_topology();
    s.sm->transport().set_smp_tap(&streams[run]);
    const auto report = s.sm->reconverge();
    s.sm->transport().set_smp_tap(nullptr);
    EXPECT_TRUE(report.converged);
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
}

TEST(ParallelDeterminism, DfssspTablesAndVlsMatchSingleThreaded) {
  routing::RoutingResult results[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree(routing::EngineKind::kDfsssp);
    s.sm->discover();
    s.sm->assign_lids();
    results[run] = s.sm->engine().compute(s.fabric, s.sm->lids());
  }
  EXPECT_EQ(results[0].lfts, results[1].lfts);
  EXPECT_EQ(results[0].dest_vl, results[1].dest_vl);
  EXPECT_EQ(results[0].num_vls, results[1].num_vls);
}

TEST(ParallelDeterminism, CheckerReportMatchesSingleThreaded) {
  inject::CheckReport reports[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    // Break forwarding on purpose so the report carries violations whose
    // order (and truncation point) must not depend on the thread count.
    const NodeId leaf = s.built.leaves.front();
    s.fabric.node(leaf).lft.clear();
    const inject::FabricChecker checker(
        *s.sm, inject::CheckerConfig{.max_violations = 5, .max_sources = 4});
    reports[run] = checker.check();
  }
  EXPECT_FALSE(reports[0].clean());
  EXPECT_EQ(reports[0].violations, reports[1].violations);
  EXPECT_EQ(reports[0].truncated, reports[1].truncated);
  EXPECT_EQ(reports[0].paths_traced, reports[1].paths_traced);
  EXPECT_EQ(reports[0].sources_sampled, reports[1].sources_sampled);
}

TEST(ParallelDeterminism, ChaosDigestMatchesSingleThreaded) {
  std::uint64_t digests[2] = {0, 1};
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = VirtualSubnet::small(core::LidScheme::kPrepopulated);
    s.vsf->boot();
    const auto report = inject::run_chaos(*s.vsf, /*seed=*/42, /*steps=*/24);
    digests[run] = report.digest;
    EXPECT_TRUE(report.all_converged);
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(ParallelDeterminism, IntCongestionMapMatchesSingleThreaded) {
  // The INT pipeline — seeded sampling, stack aggregation, map build, JSON
  // export — must be byte-identical regardless of the global pool size (the
  // pool may run sweep phases while telemetry collects).
  std::string jsons[2];
  std::size_t sampled[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    std::vector<fabric::FlowSpec> flows;
    for (std::size_t i = 1; i < s.hosts.size(); ++i) {
      fabric::FlowSpec f;
      f.src = s.hosts[i];
      f.dst = s.fabric.node(s.hosts[0]).lid();
      f.packets = 8;
      f.tenant = static_cast<std::uint32_t>(i % 3);
      flows.push_back(f);
    }
    perf::IntCollector collector;
    fabric::CreditSimConfig config;
    config.credits_per_channel = 1;
    config.int_mode.enabled = true;
    config.int_mode.sample_rate = 0.5;
    config.int_mode.seed = 2026;
    config.int_mode.sink = &collector;
    const auto report = fabric::simulate_flows(s.fabric, flows, config);
    EXPECT_TRUE(report.all_delivered());
    sampled[run] = report.int_sampled;
    jsons[run] = collector.build_map(8).to_json();
  }
  ASSERT_GT(sampled[0], 0u);
  EXPECT_EQ(sampled[0], sampled[1]);
  EXPECT_EQ(jsons[0], jsons[1]);  // byte-identical at 1 vs 4 threads
}

// Regression: distribute_lfts() used to push blocks at switches the SM has
// no path to, burning undeliverable sends every sweep. It must skip them —
// exactly like reconverge() — and pick them up once they return.
TEST(ParallelDeterminism, DistributeSkipsSeveredSwitches) {
  auto s = PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();

  // Sever one spine completely; its installed LFT is wiped, so a naive
  // distribution would try (and fail) to reprogram it.
  const NodeId spine = s.built.spines.back();
  Node& sw = s.fabric.node(spine);
  for (PortNum p = 1; p <= sw.num_ports(); ++p) {
    if (sw.ports[p].connected()) s.fabric.disconnect(spine, p);
  }
  s.sm->transport().invalidate_topology();
  sw.lft.clear();

  const auto undeliverable_before = s.sm->transport().counters().undeliverable;
  std::vector<Smp> stream;
  s.sm->transport().set_smp_tap(&stream);
  s.sm->distribute_lfts();
  s.sm->transport().set_smp_tap(nullptr);

  EXPECT_EQ(s.sm->transport().counters().undeliverable, undeliverable_before);
  for (const Smp& smp : stream) {
    EXPECT_NE(smp.target, spine) << "sent an SMP to a severed switch";
  }
}

}  // namespace
}  // namespace ibvs
