// Determinism contract of the parallel sweep fast path.
//
// The diff/extraction phases of LFT distribution, DFSSSP deadlock removal,
// and the fabric checker run on the global thread pool — but the observable
// outputs must be byte-identical to a single-threaded run: the SMP stream
// (order included), the computed tables, the per-destination VLs, the
// checker report, and the chaos digest. These tests pin that contract by
// running the same scenario at 1 and 4 threads and comparing everything.
#include <gtest/gtest.h>

#include <algorithm>

#include "fabric/credit_sim.hpp"
#include "fabric/trace.hpp"
#include "inject/chaos.hpp"
#include "inject/checker.hpp"
#include "perf/int_collector.hpp"
#include "tests/helpers.hpp"
#include "util/thread_pool.hpp"

namespace ibvs {
namespace {

using test::PhysicalSubnet;
using test::VirtualSubnet;

/// Pool sizes every sharded fast path must be indistinguishable under.
/// 1 is the serial baseline; 4 and 8 oversubscribe this runner's cores in
/// different shard geometries.
constexpr std::size_t kThreadSweep[] = {1, 4, 8};

/// Restores the default global pool sizing when a test exits.
struct ThreadGuard {
  explicit ThreadGuard(std::size_t threads) {
    ThreadPool::set_global_threads(threads);
  }
  ~ThreadGuard() { ThreadPool::set_global_threads(0); }
};

/// Full sweep with every SMP recorded.
std::vector<Smp> sweep_stream(PhysicalSubnet& s) {
  std::vector<Smp> stream;
  s.sm->transport().set_smp_tap(&stream);
  s.sm->full_sweep();
  s.sm->transport().set_smp_tap(nullptr);
  return stream;
}

TEST(ParallelDeterminism, SweepSmpStreamMatchesSingleThreaded) {
  std::vector<std::vector<Smp>> streams;
  std::vector<std::vector<Lft>> lfts;
  for (const std::size_t threads : kThreadSweep) {
    ThreadGuard guard(threads);
    auto s = PhysicalSubnet::small_fat_tree();
    streams.push_back(sweep_stream(s));
    lfts.emplace_back();
    for (const NodeId sw : s.fabric.switch_ids()) {
      lfts.back().push_back(s.fabric.node(sw).lft);
    }
  }
  ASSERT_FALSE(streams[0].empty());
  for (std::size_t run = 1; run < streams.size(); ++run) {
    EXPECT_EQ(streams[0], streams[run]) << kThreadSweep[run] << " threads";
    EXPECT_EQ(lfts[0], lfts[run]) << kThreadSweep[run] << " threads";
  }
}

TEST(ParallelDeterminism, ReconvergeStreamMatchesSingleThreaded) {
  std::vector<Smp> streams[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    // Cut one leaf-spine cable and watch the recovery stream.
    const NodeId spine = s.built.spines.front();
    s.fabric.disconnect(spine, 1);
    s.sm->transport().invalidate_topology();
    s.sm->transport().set_smp_tap(&streams[run]);
    const auto report = s.sm->reconverge();
    s.sm->transport().set_smp_tap(nullptr);
    EXPECT_TRUE(report.converged);
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
}

TEST(ParallelDeterminism, DfssspTablesAndVlsMatchSingleThreaded) {
  routing::RoutingResult results[2];
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree(routing::EngineKind::kDfsssp);
    s.sm->discover();
    s.sm->assign_lids();
    results[run] = s.sm->engine().compute(s.fabric, s.sm->lids());
  }
  EXPECT_EQ(results[0].lfts, results[1].lfts);
  EXPECT_EQ(results[0].dest_vl, results[1].dest_vl);
  EXPECT_EQ(results[0].num_vls, results[1].num_vls);
}

TEST(ParallelDeterminism, CheckerReportMatchesSingleThreaded) {
  std::vector<inject::CheckReport> reports;
  for (const std::size_t threads : kThreadSweep) {
    ThreadGuard guard(threads);
    auto s = PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    // Break forwarding on purpose so the report carries violations whose
    // order (and truncation point) must not depend on the thread count.
    const NodeId leaf = s.built.leaves.front();
    s.fabric.node(leaf).lft.clear();
    const inject::FabricChecker checker(
        *s.sm, inject::CheckerConfig{.max_violations = 5, .max_sources = 4});
    reports.push_back(checker.check());
  }
  EXPECT_FALSE(reports[0].clean());
  for (std::size_t run = 1; run < reports.size(); ++run) {
    EXPECT_EQ(reports[0].violations, reports[run].violations)
        << kThreadSweep[run] << " threads";
    EXPECT_EQ(reports[0].truncated, reports[run].truncated);
    EXPECT_EQ(reports[0].paths_traced, reports[run].paths_traced);
    EXPECT_EQ(reports[0].sources_sampled, reports[run].sources_sampled);
  }
}

TEST(ParallelDeterminism, ChaosDigestMatchesSingleThreaded) {
  std::vector<std::uint64_t> digests;
  for (const std::size_t threads : kThreadSweep) {
    ThreadGuard guard(threads);
    auto s = VirtualSubnet::small(core::LidScheme::kPrepopulated);
    s.vsf->boot();
    const auto report = inject::run_chaos(*s.vsf, /*seed=*/42, /*steps=*/24);
    digests.push_back(report.digest);
    EXPECT_TRUE(report.all_converged);
  }
  for (std::size_t run = 1; run < digests.size(); ++run) {
    EXPECT_EQ(digests[0], digests[run]) << kThreadSweep[run] << " threads";
  }
}

TEST(ParallelDeterminism, IntCongestionMapMatchesSingleThreaded) {
  // The INT pipeline — seeded sampling, stack aggregation, map build, JSON
  // export — must be byte-identical regardless of the global pool size (the
  // pool may run sweep phases while telemetry collects).
  std::string jsons[2];
  std::size_t sampled[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    ThreadGuard guard(run == 0 ? 1 : 4);
    auto s = PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    std::vector<fabric::FlowSpec> flows;
    for (std::size_t i = 1; i < s.hosts.size(); ++i) {
      fabric::FlowSpec f;
      f.src = s.hosts[i];
      f.dst = s.fabric.node(s.hosts[0]).lid();
      f.packets = 8;
      f.tenant = static_cast<std::uint32_t>(i % 3);
      flows.push_back(f);
    }
    perf::IntCollector collector;
    fabric::CreditSimConfig config;
    config.credits_per_channel = 1;
    config.int_mode.enabled = true;
    config.int_mode.sample_rate = 0.5;
    config.int_mode.seed = 2026;
    config.int_mode.sink = &collector;
    const auto report = fabric::simulate_flows(s.fabric, flows, config);
    EXPECT_TRUE(report.all_delivered());
    sampled[run] = report.int_sampled;
    jsons[run] = collector.build_map(8).to_json();
  }
  ASSERT_GT(sampled[0], 0u);
  EXPECT_EQ(sampled[0], sampled[1]);
  EXPECT_EQ(jsons[0], jsons[1]);  // byte-identical at 1 vs 4 threads
}

// ---------------------------------------------------------------------------
// Serial-trace oracle for the bitset reachability pass.
//
// The checker's contract is that its report is byte-identical to what a
// per-(source, target) trace_unicast scan would produce. The bitset pass
// earns its speed through cross-source memoization, inline vSwitch hops,
// and dense per-switch plans — each an opportunity to diverge. This oracle
// replays the checker's exact source sampling and target collection, walks
// every pair with the serial tracer, and formats findings the way the
// checker does, truncation semantics included.

struct SerialExpectation {
  std::vector<std::string> violations;
  std::size_t paths_traced = 0;
  bool truncated = false;
  std::size_t sources_sampled = 0;
};

SerialExpectation serial_reference(const sm::SubnetManager& sm,
                                   const inject::CheckerConfig& config) {
  const Fabric& fabric = sm.fabric();
  const LidMap& lids = sm.lids();

  std::vector<NodeId> sources;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (!n.is_ca() || !n.ports[1].connected()) continue;
    if (!fabric.physical_attachment(id)) continue;
    sources.push_back(id);
  }
  if (config.max_sources > 0 && sources.size() > config.max_sources) {
    std::vector<NodeId> sampled;
    const std::size_t n = sources.size();
    const std::size_t k = config.max_sources;
    for (std::size_t i = 0; i < k; ++i) {
      sampled.push_back(sources[k > 1 ? i * (n - 1) / (k - 1) : 0]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    sources = std::move(sampled);
  }

  const auto any_port_connected = [](const Node& n) {
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected()) return true;
    }
    return false;
  };
  std::vector<Lid> targets;
  for (const Lid lid : lids.assigned_lids()) {
    if (!lids.attachment(fabric, lid)) continue;
    const LidMap::Owner owner = lids.owner(lid);
    if (owner.valid() && owner.node < fabric.size() &&
        !any_port_connected(fabric.node(owner.node))) {
      continue;
    }
    targets.push_back(lid);
  }

  SerialExpectation out;
  out.sources_sampled = sources.size();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Node& src = fabric.node(sources[i]);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const auto result =
          fabric::trace_unicast(fabric, sources[i], targets[t]);
      if (result.status == fabric::TraceStatus::kDelivered) continue;
      std::string what =
          result.status == fabric::TraceStatus::kLoop
              ? "routing loop tracing LID " +
                    std::to_string(targets[t].value()) + " from " + src.name
              : "LID " + std::to_string(targets[t].value()) +
                    " unreachable from " + src.name + " (" +
                    fabric::to_string(result.status) + ")";
      out.violations.push_back(std::move(what));
      if (out.violations.size() >= config.max_violations) {
        out.truncated = true;
        out.paths_traced = i * targets.size() + t + 1;
        return out;
      }
    }
  }
  out.paths_traced = sources.size() * targets.size();
  return out;
}

/// First port of `node` cabled to `peer` (0 when not adjacent).
PortNum port_towards(const Fabric& fabric, NodeId node, NodeId peer) {
  const Node& n = fabric.node(node);
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    if (n.ports[p].connected() && n.ports[p].peer == peer) return p;
  }
  return 0;
}

/// Compares the checker (at every pool size) against the serial oracle at
/// a generous cap and at a truncating one.
void expect_matches_serial(const sm::SubnetManager& sm) {
  const inject::CheckerConfig configs[] = {
      {.max_violations = 500, .max_sources = 5},
      {.max_violations = 3, .max_sources = 5},
  };
  for (const auto& config : configs) {
    const SerialExpectation expected = serial_reference(sm, config);
    for (const std::size_t threads : kThreadSweep) {
      ThreadGuard guard(threads);
      const inject::FabricChecker checker(sm, config);
      const inject::CheckReport report = checker.check();
      EXPECT_EQ(report.violations, expected.violations)
          << threads << " threads, cap " << config.max_violations;
      EXPECT_EQ(report.truncated, expected.truncated)
          << threads << " threads, cap " << config.max_violations;
      EXPECT_EQ(report.paths_traced, expected.paths_traced)
          << threads << " threads, cap " << config.max_violations;
      EXPECT_EQ(report.sources_sampled, expected.sources_sampled);
    }
  }
}

TEST(ParallelDeterminism, CheckerMatchesSerialTraceOnBrokenPhysicalFabric) {
  auto s = PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const Fabric& fabric = s.fabric;
  const NodeId leaf0 = s.built.leaves[0];
  const NodeId leaf2 = s.built.leaves[2];
  const NodeId spine0 = s.built.spines[0];
  const NodeId spine1 = s.built.spines[1];

  // One fault per walk outcome, all placed *away* from the broken LIDs'
  // attachment switches so the LidMap pass stays clean and the report is
  // purely reachability findings.
  // kLoop: ping-pong a remote host LID between leaf0 and spine0.
  const Lid loop_lid = fabric.node(s.hosts[4]).lid();
  s.fabric.node(leaf0).lft.set(loop_lid, port_towards(fabric, leaf0, spine0));
  s.fabric.node(spine0).lft.set(loop_lid,
                                port_towards(fabric, spine0, leaf0));
  // kDropped + kNoRoute: spine1 drops one host LID outright and forwards
  // another into an uncabled port.
  const Lid drop_lid = fabric.node(s.hosts[7]).lid();
  s.fabric.node(spine1).lft.set(drop_lid, kDropPort);
  const Lid dangle_lid = fabric.node(s.hosts[10]).lid();
  s.fabric.node(spine1).lft.set(dangle_lid,
                                fabric.node(spine1).num_ports());
  // kWrongDelivery: divert a leaf0-attached LID to a host under leaf2.
  const Lid divert_lid = fabric.node(s.hosts[1]).lid();
  s.fabric.node(spine0).lft.set(divert_lid,
                                port_towards(fabric, spine0, leaf2));
  s.fabric.node(spine1).lft.set(divert_lid,
                                port_towards(fabric, spine1, leaf2));
  s.fabric.node(leaf2).lft.set(divert_lid,
                               port_towards(fabric, leaf2, s.hosts[8]));

  expect_matches_serial(*s.sm);
}

TEST(ParallelDeterminism, CheckerMatchesSerialTraceOnBrokenVirtualFabric) {
  // Same oracle over a virtualized subnet: walks now transit vSwitches
  // (inline-hop fast path) and VF LIDs join both the source and target
  // sets. Wipe one spine and loop one VF LID between the spines.
  auto s = VirtualSubnet::small(core::LidScheme::kPrepopulated);
  s.vsf->boot();
  const Fabric& fabric = s.fabric;
  const NodeId spine0 = s.built.spines[0];
  const NodeId spine1 = s.built.spines[1];

  // hyp-2 (and its VFs) hangs off leaf 0, so ping-ponging its LID between
  // spine 0 and leaf *1* leaves the attachment switch's entry intact and
  // the LidMap pass clean.
  const Lid vf_lid = fabric.node(s.hyps[2].vfs[1]).lid();
  ASSERT_NE(s.hyps[2].leaf, s.built.leaves[1]);
  s.fabric.node(spine0).lft.set(
      vf_lid, port_towards(fabric, spine0, s.built.leaves[1]));
  s.fabric.node(s.built.leaves[1])
      .lft.set(vf_lid, port_towards(fabric, s.built.leaves[1], spine0));
  s.fabric.node(spine1).lft.clear();

  expect_matches_serial(*s.sm);
}

// Regression: distribute_lfts() used to push blocks at switches the SM has
// no path to, burning undeliverable sends every sweep. It must skip them —
// exactly like reconverge() — and pick them up once they return.
TEST(ParallelDeterminism, DistributeSkipsSeveredSwitches) {
  auto s = PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();

  // Sever one spine completely; its installed LFT is wiped, so a naive
  // distribution would try (and fail) to reprogram it.
  const NodeId spine = s.built.spines.back();
  Node& sw = s.fabric.node(spine);
  for (PortNum p = 1; p <= sw.num_ports(); ++p) {
    if (sw.ports[p].connected()) s.fabric.disconnect(spine, p);
  }
  s.sm->transport().invalidate_topology();
  sw.lft.clear();

  const auto undeliverable_before = s.sm->transport().counters().undeliverable;
  std::vector<Smp> stream;
  s.sm->transport().set_smp_tap(&stream);
  s.sm->distribute_lfts();
  s.sm->transport().set_smp_tap(nullptr);

  EXPECT_EQ(s.sm->transport().counters().undeliverable, undeliverable_before);
  for (const Smp& smp : stream) {
    EXPECT_NE(smp.target, spine) << "sent an SMP to a severed switch";
  }
}

}  // namespace
}  // namespace ibvs
