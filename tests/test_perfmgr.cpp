// PerfMgr: PMA counter semantics, sweep deltas, health verdicts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "cloud/orchestrator.hpp"
#include "fabric/credit_sim.hpp"
#include "perf/health.hpp"
#include "perf/perf_mgr.hpp"
#include "telemetry/metrics.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using perf::HealthMonitor;
using perf::HealthThresholds;
using perf::PerfMgr;
using perf::PerfMgrConfig;
using perf::PortStatus;

// --- Classic (saturating) counter semantics ---

TEST(PortCountersModel, SatAddPegsAtFieldWidth) {
  PortCounters c;
  c.add_xmit(PortCounters::kMax32 - 10, 1);
  c.add_xmit(100, 1);  // would overflow the 32-bit field
  EXPECT_EQ(c.xmit_data, PortCounters::kMax32);  // pegged, not wrapped
  // The extended counter kept exact count straight through.
  EXPECT_EQ(c.ext_xmit_data,
            static_cast<std::uint64_t>(PortCounters::kMax32) + 90);
  EXPECT_TRUE(c.any_classic_saturated());
}

TEST(PortCountersModel, NarrowFieldsSaturateAtTheirOwnWidth) {
  PortCounters c;
  c.add_symbol_errors(PortCounters::kMax16);
  c.add_symbol_errors(5);
  EXPECT_EQ(c.symbol_errors, PortCounters::kMax16);
  for (int i = 0; i < 300; ++i) c.add_link_downed();
  EXPECT_EQ(c.link_downed, PortCounters::kMax8);
  EXPECT_TRUE(c.any_classic_saturated());
}

TEST(PortCountersModel, ClearClassicPreservesExtended) {
  PortCounters c;
  c.add_xmit(1000, 7);
  c.add_rcv(500, 3);
  c.add_xmit_wait(9);
  c.add_symbol_errors(2);
  c.clear_classic();
  EXPECT_EQ(c.xmit_data, 0u);
  EXPECT_EQ(c.xmit_pkts, 0u);
  EXPECT_EQ(c.xmit_wait, 0u);
  EXPECT_EQ(c.symbol_errors, 0u);
  EXPECT_FALSE(c.any_classic_saturated());
  // Extended counters run through the clear (long-horizon rates rely on it).
  EXPECT_EQ(c.ext_xmit_data, 1000u);
  EXPECT_EQ(c.ext_xmit_pkts, 7u);
  EXPECT_EQ(c.ext_rcv_data, 500u);
}

// --- Sweeps and deltas on a routed subnet ---

struct PerfMgrTest : ::testing::Test {
  test::PhysicalSubnet s = test::PhysicalSubnet::small_fat_tree();

  void SetUp() override { s.sm->full_sweep(); }

  PortCounters& host_counters(std::size_t host_idx) {
    return s.fabric.node(s.hosts[host_idx]).ports[1].counters;
  }
};

TEST_F(PerfMgrTest, FirstSweepPollsEveryReachablePortAndCostsMads) {
  PerfMgr pmgr(*s.sm);
  const auto report = pmgr.sweep();
  EXPECT_EQ(report.sweep_index, 1u);
  EXPECT_GT(report.ports_polled, 0u);
  EXPECT_EQ(report.clears, 0u);  // fresh fabric: nothing near saturation
  // Classic + extended Get per port, nothing else.
  EXPECT_EQ(report.mads, 2 * report.ports_polled);
  EXPECT_EQ(report.deltas.size(), report.ports_polled);
  EXPECT_GT(report.time_us, 0.0);
}

TEST_F(PerfMgrTest, PollingTrafficIsVisibleInSmpTelemetry) {
  auto& registry = telemetry::Registry::global();
  const telemetry::Labels get_labels{{"attribute", "PortCounters"},
                                     {"method", "Get"},
                                     {"routing", "lid"}};
  const auto before =
      registry.counter_value("ibvs_smp_total", get_labels).value_or(0);
  PerfMgr pmgr(*s.sm);
  const auto report = pmgr.sweep();
  const auto after =
      registry.counter_value("ibvs_smp_total", get_labels).value_or(0);
  // One classic Get per polled port landed in the shared MAD telemetry:
  // monitoring is management traffic, not a free observer.
  EXPECT_EQ(after - before, report.ports_polled);
}

TEST_F(PerfMgrTest, SweepDeltasSeeCreditSimTraffic) {
  PerfMgr pmgr(*s.sm);
  pmgr.sweep();  // baseline

  const std::size_t packets = 20;
  const std::uint32_t dwords = 64;
  std::vector<fabric::FlowSpec> flows{
      {s.hosts[0], s.fabric.node(s.hosts[1]).lid(), packets, 0, dwords}};
  const auto sim = fabric::simulate_flows(s.fabric, flows);
  ASSERT_TRUE(sim.all_delivered());

  const auto report = pmgr.sweep();
  const auto* src = report.find(s.hosts[0], 1);
  const auto* dst = report.find(s.hosts[1], 1);
  ASSERT_NE(src, nullptr);
  ASSERT_NE(dst, nullptr);
  // The source transmitted at least the flow's packets and dwords (plus the
  // MAD responses this sweep itself provoked).
  EXPECT_GE(src->xmit_pkts, packets);
  EXPECT_GE(src->xmit_data, packets * dwords);
  EXPECT_GE(dst->rcv_pkts, packets);
  EXPECT_TRUE(src->from_extended);
}

TEST_F(PerfMgrTest, SaturatedClassicDeltaIsFlaggedLowerBound) {
  PerfMgr classic(*s.sm, PerfMgrConfig{.poll_extended = false,
                                       .clear_fraction = 0.0});
  classic.sweep();  // baseline
  auto& c = host_counters(0);
  c.add_xmit(PortCounters::kMax32, 4);  // pegs xmit_data at its width
  const auto report = classic.sweep();
  const auto* d = report.find(s.hosts[0], 1);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->saturated);
  EXPECT_FALSE(d->from_extended);
  EXPECT_FALSE(d->cleared);  // proactive clearing was disabled
  // The classic delta stops at the pegged value: a lower bound.
  EXPECT_LE(d->xmit_data, PortCounters::kMax32);
}

TEST_F(PerfMgrTest, ExtendedCountersKeepExactDeltasPastSaturation) {
  PerfMgr extended(*s.sm, PerfMgrConfig{.poll_extended = true,
                                        .clear_fraction = 0.0});
  extended.sweep();  // baseline
  auto& c = host_counters(0);
  const std::uint64_t ext_before = c.ext_xmit_data;
  c.add_xmit(PortCounters::kMax32, 1);
  c.add_xmit(PortCounters::kMax32, 1);  // classic pegged; extended exact
  const auto report = extended.sweep();
  const auto* d = report.find(s.hosts[0], 1);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->from_extended);
  EXPECT_TRUE(d->saturated);  // the classic block is still pegged...
  // ...but the 64-bit delta exceeds what any classic field could report.
  EXPECT_GE(d->xmit_data, 2 * static_cast<std::uint64_t>(
                                  PortCounters::kMax32));
  EXPECT_GE(c.ext_xmit_data - ext_before,
            2 * static_cast<std::uint64_t>(PortCounters::kMax32));
}

TEST_F(PerfMgrTest, ProactiveClearFiresPastThresholdAndRestartsDeltas) {
  PerfMgr pmgr(*s.sm, PerfMgrConfig{.clear_fraction = 0.75});
  pmgr.sweep();  // baseline
  auto& c = host_counters(0);
  c.add_xmit(PortCounters::kMax32, 1);  // pegged: well past 3/4 full

  const auto second = pmgr.sweep();
  const auto* d = second.find(s.hosts[0], 1);
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->cleared);
  EXPECT_GE(second.clears, 1u);
  // The clear cost one extra MAD on top of the two Gets per port.
  EXPECT_EQ(second.mads, 2 * second.ports_polled + second.clears);
  // The classic block really was zeroed on the "hardware".
  EXPECT_LT(c.xmit_data, PortCounters::kMax32 / 2);

  // Next sweep starts from the cleared block: a small, sane delta (just
  // this sweep's own MAD responses), not a giant or negative one.
  const auto third = pmgr.sweep();
  const auto* d3 = third.find(s.hosts[0], 1);
  ASSERT_NE(d3, nullptr);
  EXPECT_FALSE(d3->cleared);
  EXPECT_LT(d3->xmit_data, 100000u);
}

TEST_F(PerfMgrTest, ExternalClearBetweenPollsRestartsClassicDelta) {
  PerfMgr classic(*s.sm, PerfMgrConfig{.poll_extended = false,
                                       .clear_fraction = 0.0});
  classic.sweep();  // baseline: history holds the discovery-era counts
  auto& c = host_counters(0);
  c.clear_classic();  // someone else's Set(PortCounters)
  c.add_xmit(64, 3);
  const auto report = classic.sweep();
  const auto* d = report.find(s.hosts[0], 1);
  ASSERT_NE(d, nullptr);
  // now < prev means cleared-between-polls: the delta restarts from the
  // new absolute value instead of underflowing.
  EXPECT_GE(d->xmit_pkts, 3u);
  EXPECT_LT(d->xmit_pkts, 100u);
}

TEST_F(PerfMgrTest, ExtendedDeltaSurvivesU64Wraparound) {
  PerfMgr pmgr(*s.sm, PerfMgrConfig{.clear_fraction = 0.0});
  auto& c = host_counters(0);
  c.ext_xmit_pkts = std::numeric_limits<std::uint64_t>::max() - 2;
  pmgr.sweep();  // history snapshots the near-max value
  c.ext_xmit_pkts += 8;  // wraps modulo 2^64
  const auto report = pmgr.sweep();
  const auto* d = report.find(s.hosts[0], 1);
  ASSERT_NE(d, nullptr);
  // Unsigned subtraction across the wrap is exact: 8 plus the couple of
  // MAD responses this sweep itself sent from the port.
  EXPECT_GE(d->xmit_pkts, 8u);
  EXPECT_LT(d->xmit_pkts, 100u);
}

// --- Paper topologies (large trees env-gated as in the benches) ---

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

std::vector<topology::PaperFatTree> sweep_test_trees() {
  std::vector<topology::PaperFatTree> trees{topology::PaperFatTree::k324,
                                            topology::PaperFatTree::k648};
  if (env_flag("IBVS_FIG7_LARGE") || env_flag("IBVS_FIG7_FULL")) {
    trees.push_back(topology::PaperFatTree::k5832);
  }
  if (env_flag("IBVS_FIG7_FULL")) {
    trees.push_back(topology::PaperFatTree::k11664);
  }
  return trees;
}

TEST(PerfMgrTopologies, SweepWorksOnPaperFatTrees) {
  for (const auto which : sweep_test_trees()) {
    SCOPED_TRACE(topology::to_string(which));
    auto s = test::PhysicalSubnet::paper_tree(
        which, routing::EngineKind::kFatTree);
    s.sm->full_sweep();
    PerfMgr pmgr(*s.sm);
    const auto report = pmgr.sweep();
    // Every host uplink is polled, and switch-to-switch links show up once
    // per side, so the port count strictly exceeds the host count.
    EXPECT_GT(report.ports_polled, s.hosts.size());
    EXPECT_EQ(report.mads, 2 * report.ports_polled);
    EXPECT_EQ(report.clears, 0u);
    EXPECT_GT(report.time_us, 0.0);
  }
}

// --- Health verdicts on synthetic sweeps ---

perf::SweepReport synthetic_sweep(std::vector<perf::PortDelta> deltas,
                                  std::uint64_t index = 1) {
  perf::SweepReport sweep;
  sweep.sweep_index = index;
  sweep.ports_polled = deltas.size();
  sweep.deltas = std::move(deltas);
  return sweep;
}

perf::PortDelta delta_for(NodeId node, PortNum port) {
  perf::PortDelta d;
  d.node = node;
  d.port = port;
  return d;
}

TEST(HealthMonitorModel, LinkErrorThresholdsClassifyPorts) {
  HealthMonitor monitor;
  auto clean = delta_for(1, 1);
  auto flaky = delta_for(2, 1);
  flaky.symbol_errors = 3;  // >= degraded, < error
  auto broken = delta_for(3, 1);
  broken.symbol_errors = 64;  // >= error threshold
  auto downed = delta_for(4, 1);
  downed.link_downed = 1;

  const auto report =
      monitor.analyze(synthetic_sweep({clean, flaky, broken, downed}));
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.degraded, 1u);
  EXPECT_EQ(report.errors, 2u);
  EXPECT_EQ(report.fabric_status(), PortStatus::kError);
  ASSERT_EQ(report.findings.size(), 3u);
  EXPECT_EQ(report.findings[0].node, 2u);
  EXPECT_EQ(report.findings[0].status, PortStatus::kDegraded);
  EXPECT_NE(report.findings[0].reason.find("symbol errors"),
            std::string::npos);
  EXPECT_EQ(report.findings[1].status, PortStatus::kError);
  EXPECT_NE(report.findings[2].reason.find("link-downed"),
            std::string::npos);
}

TEST(HealthMonitorModel, HotspotsAreTopKByXmitWaitDelta) {
  HealthThresholds thresholds;
  thresholds.top_k_hotspots = 2;
  HealthMonitor monitor(thresholds);
  auto a = delta_for(1, 1);
  a.xmit_wait = 5;
  a.xmit_pkts = 1;
  auto b = delta_for(2, 1);
  b.xmit_wait = 50;
  b.xmit_pkts = 1;
  auto c = delta_for(3, 1);
  c.xmit_wait = 20;
  c.xmit_pkts = 1;
  auto quiet = delta_for(4, 1);

  const auto report = monitor.analyze(synthetic_sweep({a, b, c, quiet}));
  ASSERT_EQ(report.hotspots.size(), 2u);  // top-k, not all waiting ports
  EXPECT_EQ(report.hotspots[0].node, 2u);
  EXPECT_EQ(report.hotspots[0].xmit_wait, 50u);
  EXPECT_EQ(report.hotspots[1].node, 3u);
  EXPECT_EQ(report.hotspots[1].xmit_wait, 20u);
}

TEST(HealthMonitorModel, StuckPortNeedsConsecutiveWedgedSweeps) {
  HealthMonitor monitor;  // stuck_sweeps = 2
  auto wedged = delta_for(7, 2);
  wedged.xmit_wait = 10;
  wedged.xmit_pkts = 0;

  const auto first = monitor.analyze(synthetic_sweep({wedged}, 1));
  EXPECT_TRUE(first.stuck.empty());  // one sweep is not a verdict
  const auto second = monitor.analyze(synthetic_sweep({wedged}, 2));
  ASSERT_EQ(second.stuck.size(), 1u);
  EXPECT_EQ(second.stuck[0].node, 7u);
  EXPECT_EQ(second.stuck[0].port, 2u);
  EXPECT_EQ(second.fabric_status(), PortStatus::kDegraded);

  // Any sweep where the port moves packets again resets the streak.
  auto moving = wedged;
  moving.xmit_pkts = 3;
  const auto third = monitor.analyze(synthetic_sweep({moving}, 3));
  EXPECT_TRUE(third.stuck.empty());
  const auto fourth = monitor.analyze(synthetic_sweep({wedged}, 4));
  EXPECT_TRUE(fourth.stuck.empty());  // streak restarted from zero
}

// --- Degraded link end to end: inject -> sweep -> analyze -> SM flag ---

TEST_F(PerfMgrTest, InjectedDegradedLinkReachesSubnetManager) {
  PerfMgr pmgr(*s.sm);
  HealthMonitor monitor;
  monitor.analyze(pmgr.sweep());  // clean baseline

  const NodeId leaf = s.built.host_slots[0].leaf;
  const PortNum port = s.built.host_slots[0].port;
  s.fabric.node(leaf).ports[port].counters.add_symbol_errors(12);

  const auto health = monitor.analyze(pmgr.sweep());
  ASSERT_EQ(health.findings.size(), 1u);
  EXPECT_EQ(health.findings[0].node, leaf);
  EXPECT_EQ(health.findings[0].port, port);
  EXPECT_EQ(health.findings[0].status, PortStatus::kDegraded);
  EXPECT_EQ(health.fabric_status(), PortStatus::kDegraded);

  const auto text = perf::render_fabric_health(health, s.fabric);
  EXPECT_NE(text.find("ibvs-fabric-health"), std::string::npos);
  EXPECT_NE(text.find("DEGRADED"), std::string::npos);
  EXPECT_NE(text.find("symbol errors"), std::string::npos);

  ASSERT_TRUE(s.sm->degraded_ports().empty());
  perf::apply_to_sm(*s.sm, health);
  ASSERT_EQ(s.sm->degraded_ports().size(), 1u);
  EXPECT_EQ(s.sm->degraded_ports()[0].node, leaf);
  EXPECT_EQ(s.sm->degraded_ports()[0].port, port);
  EXPECT_NE(s.sm->degraded_ports()[0].reason.find("symbol errors"),
            std::string::npos);

  // Re-applying the same finding refreshes, not duplicates.
  perf::apply_to_sm(*s.sm, health);
  EXPECT_EQ(s.sm->degraded_ports().size(), 1u);
}

// --- Migration-impact snapshots through the orchestrator ---

TEST(MigrationImpact, OrchestratorSnapshotsUplinkCountersAroundFlow) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  cloud::CloudOrchestrator orch(*s.vsf, cloud::Placement::kFirstFit);
  const auto vms = orch.launch_vms(1);

  // Without a PerfMgr attached, migrations carry no impact measurement.
  const auto unmeasured = orch.migrate(vms[0], 1);
  EXPECT_FALSE(unmeasured.impact.has_value());

  PerfMgr pmgr(*s.sm);
  orch.attach_perf(&pmgr);
  const std::size_t src_hyp = s.vsf->vm(vms[0]).hypervisor;
  const std::size_t dst_hyp = 5;
  const auto report = orch.migrate(vms[0], dst_hyp);
  ASSERT_TRUE(report.impact.has_value());
  const auto& impact = *report.impact;
  // Two snapshots x two uplinks x two PMA attributes.
  EXPECT_EQ(impact.poll_mads, 8u);
  EXPECT_EQ(impact.src_before.node, s.hyps[src_hyp].leaf);
  EXPECT_EQ(impact.src_before.port, s.hyps[src_hyp].leaf_port);
  EXPECT_EQ(impact.dst_before.node, s.hyps[dst_hyp].leaf);
  EXPECT_EQ(impact.dst_before.port, s.hyps[dst_hyp].leaf_port);
  // The migration's own SMPs (detach, LID assign, attach) crossed the two
  // hypervisor uplinks, so the measured movement is nonzero.
  EXPECT_GT(impact.src_pkts_delta() + impact.dst_pkts_delta(), 0u);
  EXPECT_GT(impact.data_dwords_delta(), 0u);
}

}  // namespace
}  // namespace ibvs
