// Fleet migration planner: goal decomposition, conflict-aware batching,
// destination-swap transactions and plan execution under faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cloud/planner.hpp"
#include "inject/checker.hpp"
#include "inject/injector.hpp"
#include "tests/helpers.hpp"
#include "util/thread_pool.hpp"

namespace ibvs {
namespace {

using test::VirtualSubnet;

core::MigrationOptions minimal() {
  return {.mode = core::ReconfigMode::kMinimal};
}

/// Host 0 filled to capacity, one VM on every other host.
std::vector<core::VmHandle> populate_for_evacuation(VirtualSubnet& s,
                                                    std::size_t vfs) {
  std::vector<core::VmHandle> vms;
  for (std::size_t i = 0; i < vfs; ++i) vms.push_back(s.create_on(0));
  for (std::size_t h = 1; h < s.hyps.size(); ++h) {
    vms.push_back(s.create_on(h));
  }
  return vms;
}

std::size_t vms_on(const core::VSwitchFabric& vsf, std::size_t hyp) {
  std::size_t n = 0;
  for (const std::uint32_t id : vsf.active_vm_ids()) {
    if (vsf.vm({id}).hypervisor == hyp) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Planning properties.

TEST(Planner, EvacuationDrainsTheHostInOnePlan) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  populate_for_evacuation(s, 4);
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud, {.mode =
                                              core::ReconfigMode::kMinimal});
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
  goal.hypervisor = 0;
  const auto plan = planner.plan(goal);

  EXPECT_EQ(plan.total_moves(), 4u);
  EXPECT_EQ(plan.swap_moves(), 0u);  // evacuations never park a peer here
  std::set<std::uint32_t> moved;
  for (const auto& batch : plan.batches) {
    for (const auto& move : batch.moves) {
      EXPECT_EQ(move.src_hypervisor, 0u);
      EXPECT_NE(move.dst_hypervisor, 0u);
      EXPECT_FALSE(move.is_swap());
      EXPECT_GT(move.predicted_smps, 0u);
      EXPECT_FALSE(move.update_keys.empty());
      EXPECT_TRUE(moved.insert(move.vm.id).second) << "VM planned twice";
    }
  }
}

TEST(Planner, BatchesArePairwiseConflictFree) {
  for (const bool uncoordinated : {false, true}) {
    auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
    s.vsf->boot();
    populate_for_evacuation(s, 4);
    cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
    cloud::MigrationPlanner planner(
        cloud, {.mode = core::ReconfigMode::kMinimal,
                .uncoordinated = uncoordinated});
    cloud::FleetGoal goal;
    goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
    goal.hypervisor = 0;
    const auto plan = planner.plan(goal);
    ASSERT_GT(plan.total_moves(), 0u);
    for (const auto& batch : plan.batches) {
      for (std::size_t i = 0; i < batch.moves.size(); ++i) {
        for (std::size_t j = i + 1; j < batch.moves.size(); ++j) {
          EXPECT_FALSE(planner.conflicts(batch.moves[i], batch.moves[j]))
              << "uncoordinated=" << uncoordinated;
        }
      }
    }
  }
}

TEST(Planner, UncoordinatedRegimeIsStrictlyStricter) {
  // Everything the coordinated predicate rejects, the uncoordinated one
  // must reject too; and shared write units conflict only when
  // uncoordinated.
  cloud::PlannedMove a;
  a.vm = {1};
  a.src_hypervisor = 0;
  a.dst_hypervisor = 1;
  a.update_keys = {10, 20};
  cloud::PlannedMove b;
  b.vm = {2};
  b.src_hypervisor = 2;
  b.dst_hypervisor = 3;
  b.update_keys = {20, 30};  // shares unit 20 with a
  EXPECT_FALSE(cloud::MigrationPlanner::conflict(a, b, false));
  EXPECT_TRUE(cloud::MigrationPlanner::conflict(a, b, true));

  // Endpoint conflicts hold in both regimes.
  cloud::PlannedMove c = b;
  c.update_keys = {40};
  c.dst_hypervisor = a.dst_hypervisor;  // same destination host
  EXPECT_TRUE(cloud::MigrationPlanner::conflict(a, c, false));
  EXPECT_TRUE(cloud::MigrationPlanner::conflict(a, c, true));

  // Slot chaining: one move's destination is another's source.
  cloud::PlannedMove d = b;
  d.update_keys = {40};
  d.src_hypervisor = a.dst_hypervisor;
  d.dst_hypervisor = 4;
  EXPECT_TRUE(cloud::MigrationPlanner::conflict(a, d, false));

  // A swap receives at BOTH endpoints: a plain copy out of either of the
  // swap's hosts conflicts with it.
  cloud::PlannedMove sw;
  sw.vm = {5};
  sw.swap_with = {6};
  sw.src_hypervisor = 2;
  sw.dst_hypervisor = 3;
  sw.update_keys = {50};
  cloud::PlannedMove out;
  out.vm = {7};
  out.src_hypervisor = 2;  // leaving the swap's source host
  out.dst_hypervisor = 5;
  out.update_keys = {60};
  EXPECT_TRUE(cloud::MigrationPlanner::conflict(sw, out, false));

  // Two plain copies out of the same host do NOT conflict — that is what
  // lets an evacuation drain in one batch.
  cloud::PlannedMove e1;
  e1.vm = {8};
  e1.src_hypervisor = 0;
  e1.dst_hypervisor = 1;
  e1.update_keys = {70};
  cloud::PlannedMove e2;
  e2.vm = {9};
  e2.src_hypervisor = 0;
  e2.dst_hypervisor = 2;
  e2.update_keys = {80};
  EXPECT_FALSE(cloud::MigrationPlanner::conflict(e1, e2, false));
  EXPECT_FALSE(cloud::MigrationPlanner::conflict(e1, e2, true));
}

TEST(Planner, PlanIsByteIdenticalAcrossThreadCounts) {
  const auto plan_once = [](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
    s.vsf->boot();
    populate_for_evacuation(s, 4);
    cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
    cloud::MigrationPlanner planner(
        cloud, {.mode = core::ReconfigMode::kMinimal});
    cloud::FleetGoal goal;
    goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
    goal.hypervisor = 0;
    return cloud::to_string(planner.plan(goal));
  };
  const std::string single = plan_once(1);
  const std::string pooled = plan_once(4);
  ThreadPool::set_global_threads(0);  // restore the default
  EXPECT_EQ(single, pooled);
}

TEST(Planner, RebalanceWithoutCongestionMapIsRejected) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  s.create_on(0);
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud);
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kRebalanceCongestion;
  EXPECT_THROW((void)planner.plan(goal), std::invalid_argument);
}

TEST(Planner, EvacuationHypervisorOutOfRangeIsRejected) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud);
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
  goal.hypervisor = 99;
  EXPECT_THROW((void)planner.plan(goal), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Destination ranking (orchestrator side of the planner's choices).

TEST(Planner, RankDestinationsTieBreaksByPfNodeId) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  const auto vm = s.create_on(0);
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  const auto ranked = cloud.rank_destinations(vm);
  ASSERT_EQ(ranked.size(), s.hyps.size() - 1);  // src excluded, all free
  // No congestion map: every score 0, so the order IS the PF NodeId order.
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].second, 0u);
    EXPECT_LT(s.hyps[ranked[i].first].pf, s.hyps[ranked[i + 1].first].pf)
        << "tie-break must be strictly increasing PF NodeId";
  }
  // Full hosts disappear from the ranking.
  const std::size_t full = ranked.front().first;
  while (s.vsf->free_vf_count(full) > 0) s.create_on(full);
  const auto reranked = cloud.rank_destinations(vm);
  EXPECT_EQ(reranked.size(), ranked.size() - 1);
  for (const auto& [h, score] : reranked) EXPECT_NE(h, full);
}

// ---------------------------------------------------------------------------
// Free-VF bookkeeping under churn (the planner's capacity oracle).

TEST(Planner, FreeVfCountersSurviveChurn) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 6, 3);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  const auto audit = [&] {
    for (std::size_t h = 0; h < s.hyps.size(); ++h) {
      const std::size_t expected = 3 - vms_on(*s.vsf, h);
      EXPECT_EQ(s.vsf->free_vf_count(h), expected) << "host " << h;
      EXPECT_EQ(s.vsf->free_vf_on(h).has_value(), expected > 0);
    }
  };
  std::vector<core::VmHandle> vms;
  for (std::size_t h = 0; h < 3; ++h) {
    vms.push_back(s.create_on(h));
    vms.push_back(s.create_on(h));
  }
  audit();
  (void)cloud.migrate_txn(vms[0], 4, minimal());
  audit();
  s.vsf->destroy_vm(vms[1]);
  audit();
  (void)cloud.swap_txn(vms[2], vms[4], minimal());
  audit();
  vms.push_back(s.create_on(0));
  audit();
}

// ---------------------------------------------------------------------------
// Destination-swap transactions.

class SwapTxn : public ::testing::TestWithParam<core::LidScheme> {};

TEST_P(SwapTxn, CommitTradesSlotsAndKeepsGuids) {
  auto s = VirtualSubnet::small(GetParam(), 6, 2);
  s.vsf->boot();
  // Both hosts full: a swap is the only move that needs no free VF.
  const auto a = s.create_on(0);
  s.create_on(0);
  const auto b = s.create_on(1);
  s.create_on(1);
  const Guid guid_a = s.vsf->vm(a).vguid;
  const Guid guid_b = s.vsf->vm(b).vguid;
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  const auto report = cloud.swap_txn(a, b, minimal());
  ASSERT_EQ(report.outcome, cloud::TxnOutcome::kCommitted) << report.error;
  EXPECT_EQ(s.vsf->vm(a).hypervisor, 1u);
  EXPECT_EQ(s.vsf->vm(b).hypervisor, 0u);
  EXPECT_EQ(s.vsf->vm(a).vguid, guid_a);  // the vGUID travels with the VM
  EXPECT_EQ(s.vsf->vm(b).vguid, guid_b);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());
}

TEST_P(SwapTxn, MidSwapFaultRollsBothBack) {
  auto s = VirtualSubnet::small(GetParam(), 6, 2);
  s.vsf->boot();
  const auto a = s.create_on(0);
  s.create_on(0);
  const auto b = s.create_on(1);
  s.create_on(1);
  const Guid guid_a = s.vsf->vm(a).vguid;
  const Guid guid_b = s.vsf->vm(b).vguid;
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kFirstFit);
  inject::FaultInjector injector(s.fabric, 3);
  cloud::TxnPolicy policy;
  policy.max_attempts = 1;
  bool killed = false;
  policy.on_step = [&](core::TxnState state, const core::MigrationTxn&) {
    if (killed || state != core::TxnState::kCopied) return;
    injector.kill_node(s.hyps[1].vswitch);
    killed = true;
  };
  const auto report = cloud.swap_txn(a, b, minimal(), policy);
  EXPECT_TRUE(killed);
  ASSERT_EQ(report.outcome, cloud::TxnOutcome::kRolledBack);
  EXPECT_EQ(s.vsf->vm(a).hypervisor, 0u);
  EXPECT_EQ(s.vsf->vm(b).hypervisor, 1u);
  EXPECT_EQ(s.vsf->vm(a).vguid, guid_a);
  EXPECT_EQ(s.vsf->vm(b).vguid, guid_b);
  injector.revive_node(s.hyps[1].vswitch);
  (void)s.sm->reconverge();
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, SwapTxn,
                         ::testing::Values(core::LidScheme::kPrepopulated,
                                           core::LidScheme::kDynamic));

// ---------------------------------------------------------------------------
// Plan execution.

TEST(PlanExecutor, EvacuationEmptiesTheHostWithZeroViolations) {
  for (const auto scheme :
       {core::LidScheme::kPrepopulated, core::LidScheme::kDynamic}) {
    auto s = VirtualSubnet::small(scheme, 8, 4);
    s.vsf->boot();
    populate_for_evacuation(s, 4);
    cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
    cloud::MigrationPlanner planner(
        cloud, {.mode = core::ReconfigMode::kMinimal});
    cloud::FleetGoal goal;
    goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
    goal.hypervisor = 0;
    const auto plan = planner.plan(goal);
    cloud::PlanExecutor executor(cloud);
    const auto exec = executor.execute(planner, plan, minimal());
    EXPECT_EQ(exec.committed, 4u);
    EXPECT_EQ(exec.rolled_back + exec.failed + exec.skipped, 0u);
    EXPECT_EQ(vms_on(*s.vsf, 0), 0u);
    // Batches overlap wall phases: the makespan beats the serial cost
    // whenever any batch holds more than one move.
    EXPECT_LE(exec.makespan_s, exec.serial_s);
    const inject::FabricChecker checker(*s.sm);
    EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());
  }
}

TEST(PlanExecutor, ConsolidationPacksTheTenant) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  std::vector<core::VmHandle> tenant;
  for (std::size_t h = 0; h < 6; ++h) tenant.push_back(s.create_on(h));
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud,
                                  {.mode = core::ReconfigMode::kMinimal});
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kConsolidateVms;
  goal.vms = tenant;
  const auto plan = planner.plan(goal);
  cloud::PlanExecutor executor(cloud);
  const auto exec = executor.execute(planner, plan, minimal());
  EXPECT_EQ(exec.rolled_back + exec.failed + exec.skipped, 0u);
  std::set<std::size_t> hosts;
  for (const auto vm : tenant) hosts.insert(s.vsf->vm(vm).hypervisor);
  // 6 VMs at 4 VFs per host fit on 2 hosts.
  EXPECT_LE(hosts.size(), 2u);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());
}

TEST(PlanExecutor, MidPlanFaultRollsBackAloneAndStaysConsistent) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  populate_for_evacuation(s, 4);
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud,
                                  {.mode = core::ReconfigMode::kMinimal});
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
  goal.hypervisor = 0;
  const auto plan = planner.plan(goal);
  ASSERT_GT(plan.total_moves(), 1u);

  inject::FaultInjector injector(s.fabric, 5);
  const std::size_t victim_dst = plan.batches[0].moves[0].dst_hypervisor;
  cloud::ExecutorPolicy policy;
  policy.replan_on_failure = false;  // keep the single-pass outcome visible
  policy.txn.max_attempts = 1;
  policy.txn.allow_replacement = false;
  bool killed = false;
  policy.txn.on_step = [&](core::TxnState state, const core::MigrationTxn& t) {
    if (killed || state != core::TxnState::kCopied) return;
    if (t.dst_hypervisor != victim_dst) return;
    injector.kill_node(s.hyps[victim_dst].vswitch);
    killed = true;
  };
  cloud::PlanExecutor executor(cloud);
  const auto exec = executor.execute(planner, plan, minimal(), policy);
  EXPECT_TRUE(killed);
  // The victim rolled back alone; everyone else still committed.
  EXPECT_GE(exec.rolled_back, 1u);
  EXPECT_GE(exec.committed, plan.total_moves() - exec.rolled_back -
                                exec.failed - exec.skipped);
  EXPECT_EQ(exec.committed + exec.rolled_back + exec.failed + exec.skipped,
            plan.total_moves());

  injector.revive_node(s.hyps[victim_dst].vswitch);
  (void)s.sm->reconverge();
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());

  // A fresh plan finishes the drain now that the fabric healed.
  const auto retry = planner.plan(goal);
  const auto done = executor.execute(planner, retry, minimal());
  EXPECT_EQ(done.rolled_back + done.failed + done.skipped, 0u);
  EXPECT_EQ(vms_on(*s.vsf, 0), 0u);
  EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());
}

TEST(PlanExecutor, StaleMoveIsSkippedNotExecuted) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic, 8, 4);
  s.vsf->boot();
  const auto vms = populate_for_evacuation(s, 4);
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud,
                                  {.mode = core::ReconfigMode::kMinimal});
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
  goal.hypervisor = 0;
  const auto plan = planner.plan(goal);
  // Destroy one planned VM between planning and execution: revalidation
  // must drop exactly that member, not fail the batch.
  s.vsf->destroy_vm(plan.batches[0].moves[0].vm);
  cloud::ExecutorPolicy policy;
  policy.replan_on_failure = false;
  cloud::PlanExecutor executor(cloud);
  const auto exec = executor.execute(planner, plan, minimal(), policy);
  EXPECT_EQ(exec.skipped, 1u);
  EXPECT_EQ(exec.committed, plan.total_moves() - 1);
  const inject::FabricChecker checker(*s.sm);
  EXPECT_TRUE(checker.check(s.vsf.get()).violations.empty());
}

}  // namespace
}  // namespace ibvs
