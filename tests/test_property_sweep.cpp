// Property sweeps: randomized shapes, randomized workloads, invariants.
//
// These parameterized tests are the wide net: for a grid of fat-tree
// shapes, schemes and engines, a seeded random VM churn must preserve every
// architectural invariant the paper relies on. Each case exercises the full
// stack (topology -> SM -> routing -> vSwitch -> reconfiguration -> data
// path).
#include <gtest/gtest.h>

#include <map>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace ibvs {
namespace {

struct SweepCase {
  std::size_t leaves;
  std::size_t spines;
  std::size_t hosts_per_leaf;
  std::size_t vfs;
  core::LidScheme scheme;
  routing::EngineKind engine;
  std::uint64_t seed;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  std::string engine = routing::to_string(c.engine);
  std::replace(engine.begin(), engine.end(), '-', '_');
  return "l" + std::to_string(c.leaves) + "s" + std::to_string(c.spines) +
         "h" + std::to_string(c.hosts_per_leaf) + "v" +
         std::to_string(c.vfs) +
         (c.scheme == core::LidScheme::kPrepopulated ? "_prepop_"
                                                     : "_dynamic_") +
         engine + "_seed" + std::to_string(c.seed);
}

class ChurnSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ChurnSweep, InvariantsSurviveRandomChurn) {
  const auto& c = GetParam();
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = c.leaves,
                                       .num_spines = c.spines,
                                       .hosts_per_leaf = c.hosts_per_leaf,
                                       .radix = 36});
  const std::size_t num_hyps = built.host_slots.size() - 1;
  auto hyps = core::attach_hypervisors(fabric, built.host_slots, c.vfs,
                                       num_hyps);
  const NodeId sm_node = fabric.add_ca("sm");
  fabric.connect(sm_node, 1, built.host_slots.back().leaf,
                 built.host_slots.back().port);
  fabric.validate();
  sm::SubnetManager smgr(fabric, sm_node, routing::make_engine(c.engine));
  core::VSwitchFabric vsf(smgr, hyps, c.scheme);
  const auto boot = vsf.boot();

  // Invariant 0: boot routing verifies and LID accounting adds up.
  ASSERT_TRUE(routing::verify_routing(smgr.routing_result()).ok);
  const std::size_t base_lids =
      fabric.num_switches() + num_hyps /*PFs*/ + 1 /*SM*/;
  if (c.scheme == core::LidScheme::kPrepopulated) {
    ASSERT_EQ(smgr.lids().count(), base_lids + num_hyps * c.vfs);
  } else {
    ASSERT_EQ(smgr.lids().count(), base_lids);
  }
  ASSERT_GT(boot.distribution.smps, 0u);

  std::vector<NodeId> pfs;
  for (const auto& h : hyps) pfs.push_back(h.pf);

  SplitMix64 rng(c.seed);
  std::vector<core::VmHandle> vms;
  std::size_t migrations = 0;
  for (int step = 0; step < 40; ++step) {
    const auto dice = rng.below(10);
    if ((dice < 5 && vsf.find_free_hypervisor()) || vms.empty()) {
      if (vsf.find_free_hypervisor()) vms.push_back(vsf.create_vm().vm);
    } else if (dice < 6) {
      const auto idx = rng.below(vms.size());
      vsf.destroy_vm(vms[idx]);
      vms.erase(vms.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const auto idx = rng.below(vms.size());
      const auto dst =
          vsf.find_free_hypervisor(vsf.vm(vms[idx]).hypervisor);
      if (!dst) continue;
      core::MigrationOptions options;
      options.mode = rng.below(2) == 0 ? core::ReconfigMode::kDeterministic
                                       : core::ReconfigMode::kMinimal;
      const auto report = vsf.migrate_vm(vms[idx], *dst, options);
      ++migrations;
      // Invariant 1: the method's SMP bounds hold on every migration.
      const auto& r = report.reconfig;
      ASSERT_LE(r.switches_updated, r.switches_total);
      if (c.scheme == core::LidScheme::kPrepopulated) {
        ASSERT_LE(r.lft_smps, 2 * r.switches_updated);
      } else {
        ASSERT_LE(r.lft_smps, r.switches_updated);
      }
    }
  }
  EXPECT_GT(migrations, 0u);

  // Invariant 2: every active VM reachable from every PF and every VM.
  for (const auto vm : vms) {
    const Lid lid = vsf.vm(vm).lid;
    ASSERT_TRUE(fabric::all_reach(fabric, pfs, lid)) << "lid " << lid;
  }
  // Invariant 3 (prepopulated): every VF LID — used or free — deliverable,
  // and the per-switch port entry multiset is still the boot-time one
  // (balancing preserved under deterministic swaps; minimal mode may remap
  // entries but must keep delivery, checked above per VF below).
  if (c.scheme == core::LidScheme::kPrepopulated) {
    for (const auto& hyp : hyps) {
      for (NodeId vf : hyp.vfs) {
        const Lid lid = fabric.node(vf).lid();
        ASSERT_TRUE(lid.valid());
        ASSERT_TRUE(fabric::all_reach(fabric, pfs, lid)) << "VF lid " << lid;
      }
    }
  }
  // Invariant 4: master and installed tables agree.
  const auto& routing = smgr.routing_result();
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    ASSERT_TRUE(fabric.node(routing.graph.switches[i]).lft ==
                routing.lfts[i]);
  }
  // Invariant 5: LID count returned to the boot level plus active VMs.
  if (c.scheme == core::LidScheme::kDynamic) {
    ASSERT_EQ(smgr.lids().count(), base_lids + vms.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChurnSweep,
    ::testing::Values(
        SweepCase{2, 1, 3, 2, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kMinHop, 1},
        SweepCase{2, 1, 3, 2, core::LidScheme::kDynamic,
                  routing::EngineKind::kMinHop, 1},
        SweepCase{4, 2, 3, 4, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kFatTree, 2},
        SweepCase{4, 2, 3, 4, core::LidScheme::kDynamic,
                  routing::EngineKind::kFatTree, 2},
        SweepCase{6, 3, 2, 3, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kMinHop, 3},
        SweepCase{6, 3, 2, 3, core::LidScheme::kDynamic,
                  routing::EngineKind::kDfsssp, 3},
        SweepCase{3, 3, 4, 2, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kUpDown, 4},
        SweepCase{3, 3, 4, 2, core::LidScheme::kDynamic,
                  routing::EngineKind::kLash, 4},
        SweepCase{8, 4, 2, 2, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kFatTree, 5},
        SweepCase{8, 4, 2, 2, core::LidScheme::kDynamic,
                  routing::EngineKind::kMinHop, 5},
        SweepCase{4, 2, 3, 4, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kFatTree, 6},
        SweepCase{4, 2, 3, 4, core::LidScheme::kPrepopulated,
                  routing::EngineKind::kFatTree, 7}),
    sweep_name);

/// Formula property: for any fat-tree shape, LIDs consumed = hosts +
/// switches, blocks = ceil/64, full-RC SMPs = switches x blocks — the
/// Table I construction, verified against real sweeps, not just the four
/// paper points.
struct ShapeCase {
  std::size_t leaves;
  std::size_t spines;
  std::size_t hosts_per_leaf;
};

class TableFormulaSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(TableFormulaSweep, SweepMatchesClosedForm) {
  const auto& c = GetParam();
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = c.leaves,
                                       .num_spines = c.spines,
                                       .hosts_per_leaf = c.hosts_per_leaf,
                                       .radix = 36});
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  sm::SubnetManager smgr(fabric, hosts[0],
                         routing::make_engine(routing::EngineKind::kMinHop));
  const auto sweep = smgr.full_sweep();

  const std::size_t switches = fabric.num_switches();
  const std::size_t lids = hosts.size() + switches;
  EXPECT_EQ(smgr.lids().count(), lids);
  const std::size_t blocks = (lids + kLftBlockSize - 1) / kLftBlockSize;
  EXPECT_EQ(smgr.lids().min_lft_blocks(), blocks);
  EXPECT_EQ(sweep.distribution.smps, switches * blocks);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TableFormulaSweep,
    ::testing::Values(ShapeCase{2, 1, 4}, ShapeCase{3, 2, 5},
                      ShapeCase{4, 2, 16}, ShapeCase{6, 3, 10},
                      ShapeCase{8, 4, 8}, ShapeCase{10, 5, 6},
                      ShapeCase{12, 6, 3}),
    [](const auto& info) {
      return "l" + std::to_string(info.param.leaves) + "s" +
             std::to_string(info.param.spines) + "h" +
             std::to_string(info.param.hosts_per_leaf);
    });

}  // namespace
}  // namespace ibvs
