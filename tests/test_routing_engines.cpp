#include <gtest/gtest.h>

#include <set>

#include "routing/verify.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using routing::EngineKind;

enum class Topo { kFatTree, kRing, kTorus, kIrregular };

struct EngineCase {
  EngineKind engine;
  Topo topo;
};

std::string case_name(const ::testing::TestParamInfo<EngineCase>& info) {
  std::string name = routing::to_string(info.param.engine);
  std::replace(name.begin(), name.end(), '-', '_');
  switch (info.param.topo) {
    case Topo::kFatTree:
      return name + "_fattree";
    case Topo::kRing:
      return name + "_ring";
    case Topo::kTorus:
      return name + "_torus";
    case Topo::kIrregular:
      return name + "_irregular";
  }
  return name;
}

topology::Built build_topo(Fabric& fabric, Topo topo) {
  switch (topo) {
    case Topo::kFatTree:
      return topology::build_two_level_fat_tree(
          fabric, topology::TwoLevelParams{.num_leaves = 4,
                                           .num_spines = 3,
                                           .hosts_per_leaf = 3,
                                           .radix = 8});
    case Topo::kRing:
      return topology::build_ring(fabric, 6, 2, 8);
    case Topo::kTorus:
      return topology::build_torus_2d(fabric, 3, 3, 2, 8);
    case Topo::kIrregular:
      return topology::build_irregular(
          fabric, topology::IrregularParams{.num_switches = 10,
                                            .hosts_per_switch = 2,
                                            .extra_links = 5,
                                            .radix = 12,
                                            .seed = 4242});
  }
  throw std::logic_error("bad topo");
}

class RoutingEngineTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  routing::RoutingResult route() {
    built_ = build_topo(fabric_, GetParam().topo);
    hosts_ = topology::attach_hosts(fabric_, built_.host_slots);
    fabric_.validate();
    // Assign LIDs: switches then hosts.
    for (NodeId sw : fabric_.switch_ids()) lids_.assign_next(fabric_, sw, 0);
    for (NodeId host : hosts_) lids_.assign_next(fabric_, host, 1);
    auto engine = routing::make_engine(GetParam().engine);
    return engine->compute(fabric_, lids_);
  }

  Fabric fabric_;
  LidMap lids_;
  topology::Built built_;
  std::vector<NodeId> hosts_;
};

TEST_P(RoutingEngineTest, EveryLidReachableFromEverySwitch) {
  const auto result = route();
  const auto report = routing::verify_routing(result);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.unreachable, 0u);
  EXPECT_EQ(report.loops, 0u);
  for (const auto& issue : report.issues) ADD_FAILURE() << issue;
  EXPECT_GT(report.pairs_checked, 0u);
}

TEST_P(RoutingEngineTest, Deterministic) {
  const auto a = route();
  auto engine = routing::make_engine(GetParam().engine);
  const auto b = engine->compute(fabric_, lids_);
  ASSERT_EQ(a.lfts.size(), b.lfts.size());
  for (std::size_t s = 0; s < a.lfts.size(); ++s) {
    EXPECT_TRUE(a.lfts[s] == b.lfts[s]) << "switch " << s;
  }
  EXPECT_EQ(a.num_vls, b.num_vls);
  EXPECT_EQ(a.dest_vl, b.dest_vl);
  EXPECT_EQ(a.pair_layer, b.pair_layer);
}

TEST_P(RoutingEngineTest, HopCountsAreMinimalAtMostDiameterPlusSlack) {
  const auto result = route();
  const auto report = routing::verify_routing(result);
  // Up*/down* may inflate paths slightly on cyclic topologies; everything
  // else stays at the true shortest-path diameter. A generous bound still
  // catches gross routing errors.
  EXPECT_LE(report.max_hops, result.graph.num_switches());
  EXPECT_GT(report.avg_hops, 0.0);
}

TEST_P(RoutingEngineTest, MeasuresComputeTime) {
  const auto result = route();
  EXPECT_GT(result.compute_seconds, 0.0);
  EXPECT_LT(result.compute_seconds, 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllTopologies, RoutingEngineTest,
    ::testing::Values(
        EngineCase{EngineKind::kMinHop, Topo::kFatTree},
        EngineCase{EngineKind::kMinHop, Topo::kRing},
        EngineCase{EngineKind::kMinHop, Topo::kTorus},
        EngineCase{EngineKind::kMinHop, Topo::kIrregular},
        EngineCase{EngineKind::kFatTree, Topo::kFatTree},
        EngineCase{EngineKind::kUpDown, Topo::kFatTree},
        EngineCase{EngineKind::kUpDown, Topo::kRing},
        EngineCase{EngineKind::kUpDown, Topo::kTorus},
        EngineCase{EngineKind::kUpDown, Topo::kIrregular},
        EngineCase{EngineKind::kDfsssp, Topo::kFatTree},
        EngineCase{EngineKind::kDfsssp, Topo::kRing},
        EngineCase{EngineKind::kDfsssp, Topo::kTorus},
        EngineCase{EngineKind::kDfsssp, Topo::kIrregular},
        EngineCase{EngineKind::kLash, Topo::kFatTree},
        EngineCase{EngineKind::kLash, Topo::kRing},
        EngineCase{EngineKind::kLash, Topo::kTorus},
        EngineCase{EngineKind::kLash, Topo::kIrregular}),
    case_name);

TEST(RoutingEngineRegistry, FactoryAndNames) {
  for (const auto kind : routing::all_engines()) {
    const auto engine = routing::make_engine(kind);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), routing::to_string(kind));
  }
  EXPECT_EQ(routing::fig7_engines().size(), 4u);
}

TEST(MinHopBalancing, SpreadsDestinationsOverSpines) {
  // 2 leaves, 4 spines, many hosts: each leaf must not funnel everything
  // through one uplink.
  Fabric fabric;
  LidMap lids;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 2,
                                       .num_spines = 4,
                                       .hosts_per_leaf = 8,
                                       .radix = 16});
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
  for (NodeId host : hosts) lids.assign_next(fabric, host, 1);
  const auto result =
      routing::make_engine(routing::EngineKind::kMinHop)->compute(fabric, lids);

  // Count, at leaf 0, how many remote-host LIDs each uplink port carries.
  const auto leaf0 = result.graph.dense(built.leaves[0]);
  std::map<PortNum, int> port_use;
  for (const auto& t : result.graph.targets) {
    if (t.sw == result.graph.dense(built.leaves[1]) && t.port != 0) {
      ++port_use[result.lfts[leaf0].get(t.lid)];
    }
  }
  EXPECT_EQ(port_use.size(), 4u);  // all four spines used
  for (const auto& [port, uses] : port_use) EXPECT_EQ(uses, 2);
}

TEST(FatTreeMultipath, DistinctLidsSameLeafCanUseDifferentSpines) {
  // The §V-A "LMC-like" benefit: two LIDs behind the same hypervisor take
  // different spines under d-mod-k, because the choice keys on the LID.
  Fabric fabric;
  LidMap lids;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 2,
                                       .num_spines = 4,
                                       .hosts_per_leaf = 4,
                                       .radix = 12});
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
  // Give host 0 (on leaf 0) four consecutive LIDs, as if it were a
  // hypervisor with prepopulated VFs.
  std::vector<Lid> multi;
  for (int i = 0; i < 3; ++i) {
    // Extra LIDs can only live on distinct ports in this model; use the
    // other hosts of leaf 0 as stand-ins — they share the leaf, which is
    // what matters for spine choice.
    multi.push_back(lids.assign_next(fabric, hosts[i], 1));
  }
  for (std::size_t i = 3; i < hosts.size(); ++i) {
    lids.assign_next(fabric, hosts[i], 1);
  }
  const auto result = routing::make_engine(routing::EngineKind::kFatTree)
                          ->compute(fabric, lids);
  // From leaf 1, the three LIDs on leaf 0 should not all share one spine.
  const auto leaf1 = result.graph.dense(built.leaves[1]);
  std::set<PortNum> used;
  for (Lid lid : multi) used.insert(result.lfts[leaf1].get(lid));
  EXPECT_GT(used.size(), 1u);
}

}  // namespace
}  // namespace ibvs
