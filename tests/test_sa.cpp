#include <gtest/gtest.h>

#include "sm/sa.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

struct SaTest : ::testing::Test {
  test::PhysicalSubnet s = test::PhysicalSubnet::small_fat_tree();

  void SetUp() override { s.sm->full_sweep(); }

  Lid lid_of(std::size_t host) const {
    return s.fabric.node(s.hosts[host]).lid();
  }
  Guid guid_of(std::size_t host) const {
    return s.fabric.node(s.hosts[host]).guid;
  }
};

TEST_F(SaTest, QueryResolvesPath) {
  sm::SaService sa(*s.sm);
  const auto record = sa.query(lid_of(0), guid_of(11));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->slid, lid_of(0));
  EXPECT_EQ(record->dlid, lid_of(11));
  EXPECT_EQ(record->dguid, guid_of(11));
  // Hosts 0 and 11 sit on different leaves: leaf -> spine -> leaf.
  EXPECT_EQ(record->hops, 2);
  EXPECT_EQ(sa.queries_served(), 1u);
}

TEST_F(SaTest, QuerySameLeafIsZeroSwitchHops) {
  sm::SaService sa(*s.sm);
  // Hosts 0..2 share leaf 0.
  const auto record = sa.query(lid_of(0), guid_of(1));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->hops, 0);
}

TEST_F(SaTest, QueryUnknownGuidFails) {
  sm::SaService sa(*s.sm);
  EXPECT_FALSE(sa.query(lid_of(0), Guid{0x12345678}).has_value());
  EXPECT_EQ(sa.queries_served(), 1u);  // still counted as SA load
}

TEST_F(SaTest, CacheHitsAfterFirstResolve) {
  sm::SaService sa(*s.sm);
  sm::PathRecordCache cache(sa, *s.sm);
  const auto first = cache.resolve(lid_of(0), guid_of(5));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  for (int i = 0; i < 5; ++i) {
    const auto again = cache.resolve(lid_of(0), guid_of(5));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->dlid, first->dlid);
  }
  EXPECT_EQ(cache.hits(), 5u);
  EXPECT_EQ(sa.queries_served(), 1u);  // the cache absorbed the rest
}

TEST_F(SaTest, CacheSurvivesVSwitchStyleMigration) {
  // The [10] result: if the GUID keeps its LID across the move (vSwitch
  // migration), cached records stay valid — no SA query after migration.
  sm::SaService sa(*s.sm);
  sm::PathRecordCache cache(sa, *s.sm);
  ASSERT_TRUE(cache.resolve(lid_of(0), guid_of(5)).has_value());

  // Simulate a vSwitch-style migration of host 5's LID+GUID to host 10's
  // port: both addresses move together.
  const Lid moved_lid = lid_of(5);
  const Guid moved_guid = guid_of(5);
  s.fabric.node(s.hosts[10]).alias_guid = moved_guid;
  s.fabric.node(s.hosts[5]).guid = Guid{0xFFFF0001};  // old spot renamed
  s.sm->lids().move(s.fabric, moved_lid, s.hosts[10], 1);
  s.sm->refresh_targets();

  const auto after = cache.resolve(lid_of(0), moved_guid);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->dlid, moved_lid);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.stale_hits(), 0u);
  EXPECT_EQ(sa.queries_served(), 1u);  // still only the initial query
}

TEST_F(SaTest, CacheGoesStaleOnSharedPortStyleMigration) {
  // Shared Port: the GUID moves but the LID does not follow — the VM now
  // answers on the destination hypervisor's LID. The cached record is
  // stale; resolve must re-query.
  sm::SaService sa(*s.sm);
  sm::PathRecordCache cache(sa, *s.sm);
  ASSERT_TRUE(cache.resolve(lid_of(0), guid_of(5)).has_value());

  const Guid moved_guid = guid_of(5);
  s.fabric.node(s.hosts[5]).guid = Guid{0xFFFF0002};
  s.fabric.node(s.hosts[10]).alias_guid = moved_guid;  // GUID moved ...
  // ... but host 10 keeps its own LID: the binding changed.

  const auto after = cache.resolve(lid_of(0), moved_guid);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->dlid, lid_of(10));
  EXPECT_EQ(cache.stale_hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(sa.queries_served(), 2u);
}

TEST_F(SaTest, InvalidateAllForcesRequery) {
  sm::SaService sa(*s.sm);
  sm::PathRecordCache cache(sa, *s.sm);
  cache.resolve(lid_of(0), guid_of(5));
  cache.invalidate_all();
  cache.resolve(lid_of(0), guid_of(5));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(sa.queries_served(), 2u);
}

TEST_F(SaTest, PerSourceCaching) {
  sm::SaService sa(*s.sm);
  sm::PathRecordCache cache(sa, *s.sm);
  cache.resolve(lid_of(0), guid_of(5));
  cache.resolve(lid_of(1), guid_of(5));  // different source: its own entry
  EXPECT_EQ(cache.misses(), 2u);
  cache.resolve(lid_of(0), guid_of(5));
  cache.resolve(lid_of(1), guid_of(5));
  EXPECT_EQ(cache.hits(), 2u);
}

TEST_F(SaTest, ServiceLevelReflectsRouting) {
  // With minhop everything rides VL 0.
  sm::SaService sa(*s.sm);
  const auto record = sa.query(lid_of(0), guid_of(11));
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->sl, 0);
}

}  // namespace
}  // namespace ibvs
