// Shared Port baseline behaviour (§IV-A) — what the vSwitch fixes.
#include <gtest/gtest.h>

#include "core/shared_port.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"

namespace ibvs {
namespace {

struct SharedPortTest : ::testing::Test {
  Fabric fabric;
  LidMap lids;
  std::vector<NodeId> hcas;
  std::unique_ptr<core::SharedPortFabric> sp;

  void SetUp() override {
    const auto built = topology::build_two_level_fat_tree(
        fabric, topology::TwoLevelParams{.num_leaves = 2,
                                         .num_spines = 1,
                                         .hosts_per_leaf = 2,
                                         .radix = 8});
    hcas = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    std::vector<core::SharedPortHypervisor> hyps;
    for (NodeId hca : hcas) {
      lids.assign_next(fabric, hca, 1);
      hyps.push_back(core::SharedPortHypervisor{hca, 4});
    }
    sp = std::make_unique<core::SharedPortFabric>(fabric, lids, hyps);
  }
};

TEST_F(SharedPortTest, AllVmsShareTheHypervisorLid) {
  sp->create_vm(0);
  sp->create_vm(0);
  const auto a = sp->vm(1);
  const auto b = sp->vm(2);
  EXPECT_EQ(a.hypervisor, b.hypervisor);
  // Different GIDs (via per-VF GUIDs), same LID.
  EXPECT_NE(a.vguid, b.vguid);
  EXPECT_EQ(sp->shared_lid(0), fabric.node(hcas[0]).lid());
  EXPECT_EQ(sp->vms_on(0), 2u);
}

TEST_F(SharedPortTest, NoSmInsideVms) {
  // QP0 access is blocked for VFs: a fundamental Shared Port limitation.
  EXPECT_FALSE(core::SharedPortFabric::vm_may_run_sm());
}

TEST_F(SharedPortTest, MigrationChangesTheVmsLid) {
  const auto id = sp->create_vm(0);
  const auto report = sp->migrate_vm(id, 2, /*active_peers=*/7);
  EXPECT_TRUE(report.lid_changed);
  EXPECT_NE(report.old_lid, report.new_lid);
  // Every active peer must rediscover the VM: the SA query storm of §I.
  EXPECT_EQ(report.peers_with_stale_paths, 7u);
  EXPECT_EQ(sp->vm(id).hypervisor, 2u);
}

TEST_F(SharedPortTest, EmulatedLidMigrationBreaksCoResidents) {
  // The paper's §VII-B emulation: moving the LID with the VM cuts off every
  // other VM sharing that LID — hence their one-VM-per-node restriction.
  sp->create_vm(0);
  sp->create_vm(0);
  const auto mover = sp->create_vm(0);
  const auto report =
      sp->migrate_vm(mover, 3, /*active_peers=*/4,
                     /*emulate_lid_migration=*/true);
  EXPECT_EQ(report.co_resident_vms_broken, 2u);
  EXPECT_FALSE(report.lid_changed);  // the VM kept the LID...
  // ...and the destination HCA now answers to it.
  EXPECT_EQ(fabric.node(hcas[3]).lid(), report.old_lid);
}

TEST_F(SharedPortTest, CapacityAndErrorHandling) {
  for (int i = 0; i < 4; ++i) sp->create_vm(1);
  EXPECT_THROW(sp->create_vm(1), std::invalid_argument);
  EXPECT_THROW((void)sp->vm(99), std::invalid_argument);
  const auto id = sp->create_vm(0);
  EXPECT_THROW(sp->migrate_vm(id, 0, 0), std::invalid_argument);  // self
  EXPECT_THROW(sp->migrate_vm(id, 1, 0), std::invalid_argument);  // full
}

TEST_F(SharedPortTest, SingleVmMigrationBreaksNobodyUnderEmulation) {
  const auto id = sp->create_vm(0);
  const auto report = sp->migrate_vm(id, 1, 0, true);
  EXPECT_EQ(report.co_resident_vms_broken, 0u);
}

}  // namespace
}  // namespace ibvs
