#include <gtest/gtest.h>

#include <algorithm>

#include "core/skyline.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

TEST(ChangedSwitches, DiffsEntryVectors) {
  core::EntryDelta delta;
  delta.old_entry = {1, 2, 3, 4};
  delta.new_entry = {1, 9, 3, 8};
  const auto changed = core::changed_switches(delta);
  EXPECT_EQ(changed, (std::vector<routing::SwitchIdx>{1, 3}));
  delta.new_entry.pop_back();
  EXPECT_THROW(core::changed_switches(delta), std::invalid_argument);
}

struct SkylineFixture : ::testing::Test {
  test::VirtualSubnet s =
      test::VirtualSubnet::small(core::LidScheme::kDynamic);
  core::VmHandle vm;
  Lid lid;

  void SetUp() override {
    s.vsf->boot();
    const auto r = s.vsf->create_vm(0);
    vm = r.vm;
    lid = r.lid;
  }
};

TEST_F(SkylineFixture, MinimalSetIsSubsetOfChangedSet) {
  s.vsf->migrate_vm(vm, 7);
  const auto& delta = s.vsf->last_delta();
  const auto changed = core::changed_switches(delta);
  const auto attach =
      s.sm->lids().attachment(s.fabric, lid);
  ASSERT_TRUE(attach.has_value());
  const auto& g = s.sm->routing_result().graph;
  const auto minimal = core::minimal_update_set(
      g, delta, g.dense(attach->first), attach->second);
  EXPECT_LE(minimal.size(), changed.size());
  EXPECT_TRUE(std::includes(changed.begin(), changed.end(), minimal.begin(),
                            minimal.end()));
}

TEST_F(SkylineFixture, HybridTablesDeliverAfterMinimalRepair) {
  // Apply only the minimal set on a copy of the entries and verify every
  // switch's hybrid route reaches the new attachment.
  s.vsf->migrate_vm(vm, 6);
  const auto& delta = s.vsf->last_delta();
  const auto attach = s.sm->lids().attachment(s.fabric, lid);
  ASSERT_TRUE(attach.has_value());
  const auto& g = s.sm->routing_result().graph;
  const auto new_sw = g.dense(attach->first);
  const auto minimal =
      core::minimal_update_set(g, delta, new_sw, attach->second);

  std::vector<bool> updated(g.num_switches(), false);
  for (auto sw : minimal) updated[sw] = true;
  for (routing::SwitchIdx start = 0; start < g.num_switches(); ++start) {
    routing::SwitchIdx x = start;
    std::size_t guard = 0;
    bool ok = false;
    while (guard++ <= g.num_switches()) {
      const PortNum port =
          updated[x] ? delta.new_entry[x] : delta.old_entry[x];
      if (x == new_sw && port == attach->second) {
        ok = true;
        break;
      }
      const auto e = g.edge_of(x, port);
      if (port == kDropPort || e == routing::SwitchGraph::kNoEdge) break;
      x = g.edges[e].to;
    }
    EXPECT_TRUE(ok) << "switch " << start << " cannot reach after repair";
  }
}

TEST_F(SkylineFixture, IntraLeafRepairIsTheLeafOnly) {
  s.vsf->migrate_vm(vm, 1);  // hypervisors 0,1,2 share leaf 0
  const auto& delta = s.vsf->last_delta();
  const auto attach = s.sm->lids().attachment(s.fabric, lid);
  ASSERT_TRUE(attach.has_value());
  const auto& g = s.sm->routing_result().graph;
  const auto minimal = core::minimal_update_set(
      g, delta, g.dense(attach->first), attach->second);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(g.switches[minimal[0]], s.hyps[0].leaf);
}

TEST_F(SkylineFixture, NoChangeMeansEmptySet) {
  // A delta with identical old/new entries needs no updates at all — the
  // trace must succeed out of the box (the LID did not actually move).
  const auto& routing = s.sm->routing_result();
  const auto& g = routing.graph;
  core::EntryDelta delta;
  delta.old_entry.resize(g.num_switches());
  delta.new_entry.resize(g.num_switches());
  for (routing::SwitchIdx i = 0; i < g.num_switches(); ++i) {
    delta.old_entry[i] = routing.lfts[i].get(lid);
    delta.new_entry[i] = delta.old_entry[i];
  }
  const auto attach = s.sm->lids().attachment(s.fabric, lid);
  const auto minimal = core::minimal_update_set(
      g, delta, g.dense(attach->first), attach->second);
  EXPECT_TRUE(minimal.empty());
}

TEST_F(SkylineFixture, UnrepairableDeltaThrows) {
  const auto& g = s.sm->routing_result().graph;
  core::EntryDelta delta;
  // Everything drops in both tables: no repair can deliver.
  delta.old_entry.assign(g.num_switches(), kDropPort);
  delta.new_entry.assign(g.num_switches(), kDropPort);
  const auto attach = s.sm->lids().attachment(s.fabric, lid);
  EXPECT_THROW(core::minimal_update_set(g, delta, g.dense(attach->first),
                                        attach->second),
               std::logic_error);
}

}  // namespace
}  // namespace ibvs
