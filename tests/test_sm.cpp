#include <gtest/gtest.h>

#include "routing/verify.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

TEST(Discovery, CountsNodesAndSmps) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const auto report = s.sm->discover();
  // 6 switches + 12 hosts.
  EXPECT_EQ(report.nodes_found, 18u);
  EXPECT_EQ(report.switches_found, 6u);
  EXPECT_EQ(report.cas_found, 12u);
  // NodeInfo per node, SwitchInfo per switch, PortInfo per connected port:
  // hosts have 1 port; each leaf has 3 hosts + 2 uplinks = 5; each spine 4.
  const std::uint64_t expected =
      18 /*NodeInfo*/ + 6 /*SwitchInfo*/ + (12 * 1 + 4 * 5 + 2 * 4);
  EXPECT_EQ(report.smps, expected);
}

TEST(LidAssignment, CoversSwitchesAndHosts) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const std::size_t assigned = s.sm->assign_lids();
  EXPECT_EQ(assigned, 18u);  // 6 switches + 12 hosts
  EXPECT_EQ(s.sm->lids().count(), 18u);
  for (NodeId host : s.hosts) {
    EXPECT_TRUE(s.fabric.node(host).lid().valid());
  }
  // Idempotent: a second pass assigns nothing.
  EXPECT_EQ(s.sm->assign_lids(), 0u);
}

TEST(LidAssignment, SkipsVfsAndMirrorsVSwitchLid) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic, 4, 2);
  s.sm->assign_lids();
  for (const auto& hyp : s.hyps) {
    EXPECT_TRUE(s.fabric.node(hyp.pf).lid().valid());
    // The vSwitch shares the PF's LID instead of consuming one (§V-A).
    EXPECT_EQ(s.fabric.node(hyp.vswitch).lid(),
              s.fabric.node(hyp.pf).lid());
    for (NodeId vf : hyp.vfs) {
      EXPECT_FALSE(s.fabric.node(vf).lid().valid());
    }
  }
}

TEST(Distribution, SendsOnlyDifferingBlocksAndIsIdempotent) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->discover();
  s.sm->assign_lids();
  s.sm->compute_routes();
  const auto first = s.sm->distribute_lfts();
  EXPECT_GT(first.smps, 0u);
  EXPECT_EQ(first.switches_touched, 6u);
  // 18 LIDs fit into one 64-entry block: exactly one SMP per switch.
  EXPECT_EQ(first.smps, 6u);

  const auto again = s.sm->distribute_lfts();
  EXPECT_EQ(again.smps, 0u);
  EXPECT_EQ(again.switches_touched, 0u);
  EXPECT_GT(again.blocks_skipped, 0u);
}

TEST(Distribution, InstalledTablesMatchMaster) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const auto& routing = s.sm->routing_result();
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    const NodeId node = routing.graph.switches[i];
    EXPECT_TRUE(s.fabric.node(node).lft == routing.lfts[i]);
  }
}

TEST(FullSweep, ReportIsCoherent) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const auto report = s.sm->full_sweep();
  EXPECT_EQ(report.discovery.nodes_found, 18u);
  EXPECT_EQ(report.lids_assigned, 18u);
  EXPECT_GT(report.path_computation_seconds, 0.0);
  EXPECT_GT(report.distribution.time_us, 0.0);
  EXPECT_GT(report.reconfiguration_time_us(),
            report.distribution.time_us);  // PCt + LFTDt
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);
}

TEST(MasterUpdates, UpdateEntryAndPush) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const auto& routing = s.sm->routing_result();
  const Lid victim = s.fabric.node(s.hosts[5]).lid();

  // Redirect one LID on switch 0 and push: exactly one SMP, hardware
  // follows.
  const PortNum old_port = routing.lfts[0].get(victim);
  const PortNum new_port = old_port == 1 ? 2 : 1;
  s.sm->update_master_entry(0, victim, new_port);
  const auto sent = s.sm->push_dirty_blocks(0, SmpRouting::kLidRouted);
  EXPECT_EQ(sent, 1u);
  const NodeId node = routing.graph.switches[0];
  EXPECT_EQ(s.fabric.node(node).lft.get(victim), new_port);
  // Nothing left dirty.
  EXPECT_EQ(s.sm->push_dirty_blocks(0, SmpRouting::kLidRouted), 0u);
}

TEST(MasterUpdates, RequireRoutingFirst) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  EXPECT_THROW(s.sm->distribute_lfts(), std::invalid_argument);
  EXPECT_THROW(s.sm->update_master_entry(0, Lid{1}, 1),
               std::invalid_argument);
  EXPECT_THROW(s.sm->refresh_targets(), std::invalid_argument);
}

TEST(RefreshTargets, FollowsLidMoves) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const Lid moved = s.fabric.node(s.hosts[3]).lid();
  // Move host 3's LID to host 11 (different leaf).
  s.sm->lids().move(s.fabric, moved, s.hosts[11], 1);
  s.sm->refresh_targets();
  const auto& g = s.sm->routing_result().graph;
  for (const auto& t : g.targets) {
    if (t.lid == moved) {
      const auto attach = s.fabric.physical_attachment(s.hosts[11]);
      ASSERT_TRUE(attach.has_value());
      EXPECT_EQ(t.sw, g.dense(attach->first));
      EXPECT_EQ(t.port, attach->second);
    }
  }
}

TEST(Generation, BumpsOnRecompute) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const auto g0 = s.sm->routing_generation();
  s.sm->discover();
  s.sm->assign_lids();
  s.sm->compute_routes();
  EXPECT_GT(s.sm->routing_generation(), g0);
  const auto g1 = s.sm->routing_generation();
  s.sm->bump_generation();
  EXPECT_EQ(s.sm->routing_generation(), g1 + 1);
}

TEST(EngineSwap, SetEngineTakesEffect) {
  auto s = test::PhysicalSubnet::small_fat_tree(routing::EngineKind::kMinHop);
  s.sm->full_sweep();
  EXPECT_EQ(s.sm->engine().name(), "minhop");
  s.sm->set_engine(routing::make_engine(routing::EngineKind::kFatTree));
  EXPECT_EQ(s.sm->engine().name(), "fat-tree");
  s.sm->compute_routes();
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);
}

}  // namespace
}  // namespace ibvs
