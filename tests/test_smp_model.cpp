// SMP model: attribute naming, counters, streaming.
#include "fabric/timing.hpp"
#include <gtest/gtest.h>

#include <sstream>

#include "ib/smp.hpp"

namespace ibvs {
namespace {

TEST(SmpModel, AttributeNames) {
  EXPECT_EQ(to_string(SmpAttribute::kNodeInfo), "NodeInfo");
  EXPECT_EQ(to_string(SmpAttribute::kPortInfo), "PortInfo");
  EXPECT_EQ(to_string(SmpAttribute::kSwitchInfo), "SwitchInfo");
  EXPECT_EQ(to_string(SmpAttribute::kLinearFwdTable), "LinearFwdTable");
  EXPECT_EQ(to_string(SmpAttribute::kMulticastFwdTable), "MulticastFwdTable");
  EXPECT_EQ(to_string(SmpAttribute::kGuidInfo), "GuidInfo");
  EXPECT_EQ(to_string(SmpAttribute::kVSwitchLidAssign), "VSwitchLidAssign");
  EXPECT_EQ(to_string(SmpAttribute::kPortCounters), "PortCounters");
  EXPECT_EQ(to_string(SmpAttribute::kPortCountersExtended),
            "PortCountersExtended");
}

TEST(SmpModel, Streaming) {
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kLinearFwdTable;
  smp.routing = SmpRouting::kDirected;
  smp.target = 42;
  smp.block = 7;
  smp.route = {1, 2, 3};
  std::ostringstream os;
  os << smp;
  const std::string text = os.str();
  EXPECT_NE(text.find("Set(LinearFwdTable)"), std::string::npos);
  EXPECT_NE(text.find("node 42"), std::string::npos);
  EXPECT_NE(text.find("block 7"), std::string::npos);
  EXPECT_NE(text.find("DR 3 hops"), std::string::npos);
}

TEST(SmpModel, CountersClassifyAndAggregate) {
  SmpCounters counters;
  const auto record = [&](SmpAttribute attribute, SmpRouting routing) {
    Smp smp;
    smp.attribute = attribute;
    smp.routing = routing;
    counters.record(smp);
  };
  record(SmpAttribute::kLinearFwdTable, SmpRouting::kDirected);
  record(SmpAttribute::kMulticastFwdTable, SmpRouting::kLidRouted);
  record(SmpAttribute::kNodeInfo, SmpRouting::kDirected);
  record(SmpAttribute::kSwitchInfo, SmpRouting::kDirected);
  record(SmpAttribute::kPortInfo, SmpRouting::kDirected);
  record(SmpAttribute::kGuidInfo, SmpRouting::kLidRouted);
  record(SmpAttribute::kVSwitchLidAssign, SmpRouting::kLidRouted);
  record(SmpAttribute::kPortCounters, SmpRouting::kLidRouted);
  record(SmpAttribute::kPortCountersExtended, SmpRouting::kLidRouted);

  EXPECT_EQ(counters.total, 9u);
  EXPECT_EQ(counters.lft_block_writes, 1u);
  EXPECT_EQ(counters.mft_block_writes, 1u);
  EXPECT_EQ(counters.discovery, 2u);
  EXPECT_EQ(counters.port_info, 1u);
  EXPECT_EQ(counters.guid_info, 1u);
  EXPECT_EQ(counters.vf_lid_assign, 1u);
  EXPECT_EQ(counters.perf_mgmt, 2u);
  EXPECT_EQ(counters.directed, 4u);
  EXPECT_EQ(counters.lid_routed, 5u);

  SmpCounters sum;
  sum += counters;
  sum += counters;
  EXPECT_EQ(sum.total, 18u);
  EXPECT_EQ(sum.lft_block_writes, 2u);
  EXPECT_EQ(sum.perf_mgmt, 4u);
  EXPECT_EQ(sum.directed, 8u);
}

TEST(SmpModel, TimingModelTerms) {
  // The k and r of eqs. (2)-(5), spelled out for one SMP.
  fabric::TimingModel timing;
  timing.hop_latency_us = 2.0;
  timing.directed_hop_overhead_us = 3.0;
  timing.target_processing_us = 1.0;
  EXPECT_DOUBLE_EQ(timing.smp_latency_us(4, false), 4 * 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(timing.smp_latency_us(4, true), 4 * (2.0 + 3.0) + 1.0);
  EXPECT_DOUBLE_EQ(timing.smp_latency_us(0, true), 1.0);  // local target
}

}  // namespace
}  // namespace ibvs
