#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "routing/engine.hpp"
#include "sm/subnet_manager.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::telemetry {
namespace {

// Local registries keep these tests independent of the global one the
// library layers report into (exercised separately at the bottom).

TEST(Counter, IncrementAndValue) {
  Registry registry;
  Counter& c = registry.counter("test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.counter_value("test_total"), 42u);
}

TEST(Counter, LabeledChildrenAreDistinct) {
  Registry registry;
  Counter& a = registry.counter("fam", {{"k", "a"}});
  Counter& b = registry.counter("fam", {{"k", "b"}});
  EXPECT_NE(&a, &b);
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(registry.counter_value("fam", {{"k", "a"}}), 3u);
  EXPECT_EQ(registry.counter_value("fam", {{"k", "b"}}), 4u);
  EXPECT_EQ(registry.counter_family_total("fam"), 7u);
}

TEST(Counter, LabelOrderDoesNotMatter) {
  Registry registry;
  Counter& a = registry.counter("fam", {{"x", "1"}, {"y", "2"}});
  Counter& b = registry.counter("fam", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Counter, SameNameSameLabelsSameChild) {
  Registry registry;
  EXPECT_EQ(&registry.counter("c"), &registry.counter("c"));
}

TEST(Counter, KindMismatchThrows) {
  Registry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("metric"), std::invalid_argument);
}

TEST(Gauge, SetAndAdd) {
  Registry registry;
  Gauge& g = registry.gauge("depth");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_EQ(registry.gauge_value("depth"), 1.5);
}

TEST(Histogram, LogScaleBucketing) {
  Registry registry;
  Histogram& h = registry.histogram(
      "lat", {}, HistogramOptions{.min_bound = 1.0, .num_buckets = 4});
  // Bounds: 1, 2, 4, 8; observations at, below and beyond them.
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (bounds are inclusive upper edges)
  h.observe(1.5);   // <= 2
  h.observe(8.0);   // <= 8
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 111.0);
  EXPECT_EQ(h.cumulative(0), 2u);   // <= 1
  EXPECT_EQ(h.cumulative(1), 3u);   // <= 2
  EXPECT_EQ(h.cumulative(2), 3u);   // <= 4
  EXPECT_EQ(h.cumulative(3), 4u);   // <= 8
  EXPECT_EQ(h.cumulative(4), 5u);   // +Inf
}

TEST(Histogram, BoundsDouble) {
  Registry registry;
  Histogram& h = registry.histogram(
      "b", {}, HistogramOptions{.min_bound = 0.5, .num_buckets = 3});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 0.5);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 2.0);
}

TEST(Registry, ConcurrentIncrementsFromThreadPool) {
  Registry registry;
  Counter& c = registry.counter("hits_total");
  Gauge& g = registry.gauge("level");
  Histogram& h = registry.histogram("obs");
  ThreadPool pool(4);
  constexpr std::size_t kIters = 10000;
  pool.parallel_for(0, kIters, [&](std::size_t i) {
    c.inc();
    g.add(1.0);
    h.observe(static_cast<double>(i % 7) * 1e-3);
  });
  EXPECT_EQ(c.value(), kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kIters));
  EXPECT_EQ(h.count(), kIters);
}

TEST(Registry, ConcurrentFamilyLookupIsSafe) {
  Registry registry;
  ThreadPool pool(4);
  pool.parallel_for(0, 1000, [&](std::size_t i) {
    registry.counter("fam", {{"k", std::to_string(i % 16)}}).inc();
  });
  EXPECT_EQ(registry.counter_family_total("fam"), 1000u);
}

TEST(Registry, DisabledWritesAreNoOps) {
  Registry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h");
  Registry::set_enabled(false);
  c.inc(100);
  g.set(5.0);
  h.observe(1.0);
  Registry::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, ResetValuesKeepsReferencesValid) {
  Registry registry;
  Counter& c = registry.counter("c", {{"k", "v"}});
  c.inc(9);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(registry.counter_value("c", {{"k", "v"}}), 1u);
}

TEST(Registry, PrometheusExpositionGolden) {
  Registry registry;
  registry.counter("smp_total", {{"attribute", "PortInfo"}}, "SMPs sent")
      .inc(3);
  registry.counter("smp_total", {{"attribute", "NodeInfo"}}).inc(2);
  registry.gauge("queue_depth", {}, "Depth").set(1.5);
  const std::string expected =
      "# HELP queue_depth Depth\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 1.5\n"
      "# HELP smp_total SMPs sent\n"
      "# TYPE smp_total counter\n"
      "smp_total{attribute=\"NodeInfo\"} 2\n"
      "smp_total{attribute=\"PortInfo\"} 3\n";
  EXPECT_EQ(registry.prometheus_text(), expected);
}

TEST(Registry, PrometheusHistogramExposition) {
  Registry registry;
  Histogram& h = registry.histogram(
      "lat_us", {}, HistogramOptions{.min_bound = 1.0, .num_buckets = 2});
  h.observe(0.5);
  h.observe(3.0);
  const std::string expected =
      "# TYPE lat_us histogram\n"
      "lat_us_bucket{le=\"1\"} 1\n"
      "lat_us_bucket{le=\"2\"} 1\n"
      "lat_us_bucket{le=\"+Inf\"} 2\n"
      "lat_us_sum 3.5\n"
      "lat_us_count 2\n"
      "lat_us{quantile=\"0.5\"} 1\n"
      "lat_us{quantile=\"0.95\"} 2\n"
      "lat_us{quantile=\"0.99\"} 2\n";
  EXPECT_EQ(registry.prometheus_text(), expected);
}

TEST(Histogram, QuantileEstimation) {
  Registry registry;
  Histogram& h = registry.histogram(
      "q", {}, HistogramOptions{.min_bound = 1.0, .num_buckets = 4});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  // Bounds 1,2,4,8: four observations in (2,4], so every quantile
  // interpolates linearly inside that bucket.
  for (int i = 0; i < 4; ++i) h.observe(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);   // rank 2 of 4 -> midpoint
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);   // upper edge of the bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.5);  // rank 1 of 4
}

TEST(Histogram, QuantileOverflowClampsToLastBound) {
  Registry registry;
  Histogram& h = registry.histogram(
      "q", {}, HistogramOptions{.min_bound = 1.0, .num_buckets = 2});
  h.observe(100.0);  // lands beyond the last finite bound (2)
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(Histogram, QuantilesInJsonSnapshot) {
  Registry registry;
  Histogram& h = registry.histogram(
      "q", {}, HistogramOptions{.min_bound = 1.0, .num_buckets = 4});
  for (int i = 0; i < 4; ++i) h.observe(3.0);
  const std::string snapshot = registry.json_snapshot();
  EXPECT_NE(snapshot.find("\"quantiles\":{\"p50\":3,\"p95\":3.9,\"p99\":3.98}"),
            std::string::npos);
}

TEST(Registry, JsonSnapshotGolden) {
  Registry registry;
  registry.counter("c_total", {{"k", "v"}}).inc(7);
  registry.gauge("g").set(2.0);
  const std::string expected =
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\":\"c_total\",\"labels\":{\"k\":\"v\"},\"value\":7}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\":\"g\",\"labels\":{},\"value\":2}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "  ]\n}\n";
  EXPECT_EQ(registry.json_snapshot(), expected);
}

TEST(Registry, JsonSnapshotHistogramSparseBuckets) {
  Registry registry;
  Histogram& h = registry.histogram(
      "h", {}, HistogramOptions{.min_bound = 1.0, .num_buckets = 3});
  h.observe(0.5);
  h.observe(0.5);
  h.observe(50.0);  // overflow; buckets 2 and 4 stay empty -> omitted
  const std::string snapshot = registry.json_snapshot();
  EXPECT_NE(snapshot.find("\"count\":3"), std::string::npos);
  EXPECT_NE(snapshot.find("{\"le\":1,\"count\":2}"), std::string::npos);
  EXPECT_NE(snapshot.find("{\"le\":\"+Inf\",\"count\":1}"),
            std::string::npos);
  EXPECT_EQ(snapshot.find("{\"le\":2,"), std::string::npos);
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

// --- Span tracer ---

TEST(Tracer, SpanRecordsDurationAndAttrs) {
  Tracer tracer;
  {
    auto span = tracer.span("op", {{"k", "v"}});
    span.set_attr("count", "3");
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "op");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_GE(spans[0].duration_us, 0.0);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
  EXPECT_EQ(spans[0].attrs[1].second, "3");
}

TEST(Tracer, SetAttrOverwrites) {
  Tracer tracer;
  {
    auto span = tracer.span("op", {{"k", "old"}});
    span.set_attr("k", "new");
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].second, "new");
}

TEST(Tracer, NestedSpansRecordParent) {
  Tracer tracer;
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    auto outer = tracer.span("outer");
    outer_id = outer.id();
    {
      auto inner = tracer.span("inner");
      inner_id = inner.id();
    }
  }
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].id, inner_id);
  EXPECT_EQ(spans[0].parent, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent, 0u);
}

TEST(Tracer, SeparateTracersDoNotNestIntoEachOther) {
  Tracer a;
  Tracer b;
  auto outer = a.span("a-outer");
  auto inner = b.span("b-inner");
  inner.end();
  outer.end();
  ASSERT_EQ(b.finished().size(), 1u);
  EXPECT_EQ(b.finished()[0].parent, 0u);  // a's span is not its parent
}

TEST(Tracer, EndIsIdempotentAndMoveSafe) {
  Tracer tracer;
  auto span = tracer.span("op");
  span.end();
  span.end();
  Span moved = std::move(span);
  moved.end();
  EXPECT_EQ(tracer.finished().size(), 1u);
}

TEST(Tracer, DisabledHandsOutInertSpans) {
  Tracer tracer;
  tracer.set_enabled(false);
  {
    auto span = tracer.span("op");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.finished().empty());
}

TEST(Tracer, JsonLinesSinkStreamsOnClose) {
  Tracer tracer;
  std::ostringstream sink;
  tracer.set_sink(&sink);
  { auto span = tracer.span("op", {{"k", "v"}}); }
  tracer.set_sink(nullptr);
  const std::string line = sink.str();
  EXPECT_NE(line.find("{\"name\":\"op\""), std::string::npos);
  EXPECT_NE(line.find("\"attrs\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  // One complete JSON object per line.
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(Tracer, DumpJsonlMatchesFinished) {
  Tracer tracer;
  { auto s1 = tracer.span("one"); }
  { auto s2 = tracer.span("two"); }
  std::ostringstream os;
  tracer.dump_jsonl(os);
  const std::string dump = os.str();
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
  EXPECT_NE(dump.find("\"one\""), std::string::npos);
  EXPECT_NE(dump.find("\"two\""), std::string::npos);
  tracer.clear();
  EXPECT_TRUE(tracer.finished().empty());
}

TEST(Tracer, FlushToFileWritesJsonLines) {
  Tracer tracer;
  { auto span = tracer.span("flushed-op", {{"k", "v"}}); }
  const std::string path =
      testing::TempDir() + "ibvs_trace_flush_test.jsonl";
  ASSERT_TRUE(tracer.flush_to_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"flushed-op\""), std::string::npos);
  EXPECT_NE(line.find("\"attrs\":{\"k\":\"v\"}"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // exactly one span, one line
  std::remove(path.c_str());
}

TEST(Tracer, FlushToFileRefusesWhenEmpty) {
  Tracer tracer;  // no spans recorded
  const std::string path =
      testing::TempDir() + "ibvs_trace_flush_empty.jsonl";
  EXPECT_FALSE(tracer.flush_to_file(path));
  std::ifstream in(path);
  EXPECT_FALSE(in.good());  // no file created for an empty trace
}

TEST(Tracer, SpansFromPoolThreadsGetDistinctThreadIds) {
  Tracer tracer;
  ThreadPool pool(4);
  pool.parallel_for(0, 64, [&](std::size_t) {
    auto span = tracer.span("worker-op");
  });
  const auto spans = tracer.finished();
  ASSERT_EQ(spans.size(), 64u);
  for (const auto& s : spans) EXPECT_GT(s.thread, 0u);
}

// --- Library wiring: the global registry as single source of truth ---

TEST(Wiring, SweepSmpCountersMatchTransportCounters) {
  auto& registry = Registry::global();
  const Labels lft{{"attribute", "LinearFwdTable"},
                   {"method", "Set"},
                   {"routing", "directed"}};
  // SmpCounters::port_info counts every PortInfo SMP regardless of method
  // or routing, so sum the telemetry children across those label values.
  const auto port_info_total = [&registry]() {
    std::uint64_t sum = 0;
    for (const char* method : {"Get", "Set"})
      for (const char* routing : {"directed", "lid"})
        sum += registry
                   .counter_value("ibvs_smp_total",
                                  {{"attribute", "PortInfo"},
                                   {"method", method},
                                   {"routing", routing}})
                   .value_or(0);
    return sum;
  };
  const std::uint64_t lft_before =
      registry.counter_value("ibvs_smp_total", lft).value_or(0);
  const std::uint64_t port_before = port_info_total();
  const std::uint64_t total_before =
      registry.counter_family_total("ibvs_smp_total");

  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 4,
                                       .num_spines = 2,
                                       .hosts_per_leaf = 3,
                                       .radix = 12});
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  sm::SubnetManager smgr(fabric, hosts[0],
                         routing::make_engine(routing::EngineKind::kFatTree));
  const auto sweep = smgr.full_sweep();

  // The telemetry counters moved by exactly what the sweep reported and
  // what the transport's own struct recorded — one source of truth.
  EXPECT_EQ(registry.counter_value("ibvs_smp_total", lft).value_or(0) -
                lft_before,
            sweep.distribution.smps);
  EXPECT_EQ(registry.counter_value("ibvs_smp_total", lft).value_or(0) -
                lft_before,
            smgr.transport().counters().lft_block_writes);
  EXPECT_EQ(port_info_total() - port_before,
            smgr.transport().counters().port_info);
  EXPECT_EQ(registry.counter_family_total("ibvs_smp_total") - total_before,
            smgr.transport().counters().total);
}

TEST(Wiring, SweepEmitsPhaseSpans) {
  auto& tracer = Tracer::global();
  tracer.clear();

  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 2,
                                       .num_spines = 2,
                                       .hosts_per_leaf = 2,
                                       .radix = 8});
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  sm::SubnetManager smgr(fabric, hosts[0],
                         routing::make_engine(routing::EngineKind::kMinHop));
  smgr.full_sweep();

  const auto spans = tracer.finished();
  std::uint64_t sweep_id = 0;
  for (const auto& s : spans) {
    if (s.name == "sm.sweep") sweep_id = s.id;
  }
  ASSERT_NE(sweep_id, 0u);
  bool saw_discovery = false;
  bool saw_lids = false;
  bool saw_pct = false;
  bool saw_lftdt = false;
  for (const auto& s : spans) {
    if (s.parent != sweep_id) continue;
    saw_discovery |= s.name == "sm.discovery";
    saw_lids |= s.name == "sm.lid_assignment";
    saw_pct |= s.name == "sm.path_computation";
    saw_lftdt |= s.name == "sm.lft_distribution";
  }
  EXPECT_TRUE(saw_discovery);
  EXPECT_TRUE(saw_lids);
  EXPECT_TRUE(saw_pct);
  EXPECT_TRUE(saw_lftdt);
  tracer.clear();
}

}  // namespace
}  // namespace ibvs::telemetry
