#include <gtest/gtest.h>

#include "ib/lid_map.hpp"
#include "routing/graph.hpp"
#include "topology/export.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"
#include "topology/irregular.hpp"

namespace ibvs {
namespace {

using topology::PaperFatTree;

/// Expected switch counts per Table I.
struct PaperShape {
  PaperFatTree which;
  std::size_t nodes;
  std::size_t switches;
};

class PaperTreeTest : public ::testing::TestWithParam<PaperShape> {};

TEST_P(PaperTreeTest, MatchesTableI) {
  const auto& shape = GetParam();
  Fabric fabric;
  const auto built = topology::build_paper_fat_tree(fabric, shape.which);
  EXPECT_EQ(built.host_slots.size(), shape.nodes);
  EXPECT_EQ(built.num_switches(), shape.switches);
  EXPECT_EQ(fabric.num_switches(true), shape.switches);
  fabric.validate();
}

INSTANTIATE_TEST_SUITE_P(
    TableI, PaperTreeTest,
    ::testing::Values(PaperShape{PaperFatTree::k324, 324, 36},
                      PaperShape{PaperFatTree::k648, 648, 54},
                      PaperShape{PaperFatTree::k5832, 5832, 972},
                      PaperShape{PaperFatTree::k11664, 11664, 1620}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nodes);
    });

/// Verifies the switch graph of a built topology is connected.
bool switch_graph_connected(const Fabric& fabric) {
  LidMap lids;
  const auto g = routing::SwitchGraph::build(fabric, lids);
  if (g.num_switches() == 0) return true;
  std::vector<bool> seen(g.num_switches(), false);
  std::vector<routing::SwitchIdx> queue{0};
  seen[0] = true;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [first, last] = g.out(queue[head]);
    for (const auto* e = first; e != last; ++e) {
      if (!seen[e->to]) {
        seen[e->to] = true;
        queue.push_back(e->to);
      }
    }
  }
  return queue.size() == g.num_switches();
}

TEST(FatTree, SmallTreeStructure) {
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{
                  .num_leaves = 4, .num_spines = 2, .hosts_per_leaf = 3,
                  .radix = 8});
  EXPECT_EQ(built.leaves.size(), 4u);
  EXPECT_EQ(built.spines.size(), 2u);
  EXPECT_EQ(built.host_slots.size(), 12u);
  fabric.validate();
  EXPECT_TRUE(switch_graph_connected(fabric));
  // Every leaf has exactly one link to every spine.
  for (NodeId leaf : built.leaves) {
    std::size_t up = 0;
    const Node& n = fabric.node(leaf);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected()) ++up;
    }
    EXPECT_EQ(up, 2u);  // hosts not yet attached
  }
}

TEST(FatTree, RadixOverflowRejected) {
  Fabric fabric;
  EXPECT_THROW(topology::build_two_level_fat_tree(
                   fabric, topology::TwoLevelParams{.num_leaves = 2,
                                                    .num_spines = 4,
                                                    .hosts_per_leaf = 6,
                                                    .radix = 8}),
               std::invalid_argument);
}

TEST(FatTree, ThreeLevelPodWiring) {
  Fabric fabric;
  const auto built = topology::build_three_level_fat_tree(
      fabric, topology::ThreeLevelParams{.num_pods = 4,
                                         .leaves_per_pod = 2,
                                         .spines_per_pod = 2,
                                         .num_cores = 4,
                                         .hosts_per_leaf = 2,
                                         .radix = 8});
  EXPECT_EQ(built.leaves.size(), 8u);
  EXPECT_EQ(built.spines.size(), 8u);
  EXPECT_EQ(built.cores.size(), 4u);
  EXPECT_EQ(built.host_slots.size(), 16u);
  fabric.validate();
  EXPECT_TRUE(switch_graph_connected(fabric));
}

TEST(FatTree, LinksPerSpineMultiplicity) {
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 2,
                                       .num_spines = 2,
                                       .hosts_per_leaf = 2,
                                       .radix = 8,
                                       .links_per_spine = 2});
  fabric.validate();
  // Each leaf now has 4 uplinks (2 per spine).
  const Node& leaf = fabric.node(built.leaves[0]);
  std::size_t cables = 0;
  for (PortNum p = 1; p <= leaf.num_ports(); ++p) {
    if (leaf.ports[p].connected()) ++cables;
  }
  EXPECT_EQ(cables, 4u);
}

TEST(Ring, StructureAndConnectivity) {
  Fabric fabric;
  const auto built = topology::build_ring(fabric, 5, 2, 8);
  EXPECT_EQ(built.leaves.size(), 5u);
  EXPECT_EQ(built.host_slots.size(), 10u);
  fabric.validate();
  EXPECT_TRUE(switch_graph_connected(fabric));
  EXPECT_THROW(topology::build_ring(fabric, 2, 1, 8), std::invalid_argument);
}

TEST(Torus, StructureAndConnectivity) {
  Fabric fabric;
  const auto built = topology::build_torus_2d(fabric, 3, 4, 1, 8);
  EXPECT_EQ(built.leaves.size(), 12u);
  fabric.validate();
  EXPECT_TRUE(switch_graph_connected(fabric));
  // Every torus switch has exactly 4 switch links.
  for (NodeId sw : built.leaves) {
    const Node& n = fabric.node(sw);
    std::size_t cables = 0;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected()) ++cables;
    }
    EXPECT_EQ(cables, 4u);
  }
}

TEST(Irregular, DeterministicForSeed) {
  Fabric f1, f2;
  const topology::IrregularParams params{.num_switches = 12,
                                         .hosts_per_switch = 2,
                                         .extra_links = 6,
                                         .radix = 10,
                                         .seed = 77};
  const auto b1 = topology::build_irregular(f1, params);
  const auto b2 = topology::build_irregular(f2, params);
  EXPECT_EQ(topology::to_link_list(f1), topology::to_link_list(f2));
  EXPECT_TRUE(switch_graph_connected(f1));
  EXPECT_EQ(b1.host_slots.size(), b2.host_slots.size());
}

TEST(Irregular, ConnectedAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Fabric fabric;
    topology::build_irregular(
        fabric, topology::IrregularParams{.num_switches = 9,
                                          .hosts_per_switch = 1,
                                          .extra_links = 4,
                                          .radix = 12,
                                          .seed = seed});
    fabric.validate();
    EXPECT_TRUE(switch_graph_connected(fabric)) << "seed " << seed;
  }
}

TEST(Hosts, AttachAndLimit) {
  Fabric fabric;
  const auto built = topology::build_ring(fabric, 3, 3, 8);
  const auto some = topology::attach_hosts(fabric, built.host_slots, 4);
  EXPECT_EQ(some.size(), 4u);
  fabric.validate();
  for (NodeId host : some) {
    EXPECT_TRUE(fabric.physical_attachment(host).has_value());
  }
}

TEST(Export, DotAndLinkList) {
  Fabric fabric;
  const auto built = topology::build_ring(fabric, 3, 1, 8);
  topology::attach_hosts(fabric, built.host_slots);
  const std::string dot = topology::to_dot(fabric);
  EXPECT_NE(dot.find("graph fabric"), std::string::npos);
  EXPECT_NE(dot.find("ring-0"), std::string::npos);
  EXPECT_NE(dot.find("host-0"), std::string::npos);
  const std::string links = topology::to_link_list(fabric);
  // 3 ring cables + 3 host cables, one line each.
  EXPECT_EQ(std::count(links.begin(), links.end(), '\n'), 6);
  const std::string sum = topology::summary(fabric);
  EXPECT_NE(sum.find("3 physical switches"), std::string::npos);
}

TEST(LinkListIo, RoundTripsPhysicalTopologies) {
  Fabric original;
  const auto built = topology::build_two_level_fat_tree(
      original, topology::TwoLevelParams{.num_leaves = 3,
                                         .num_spines = 2,
                                         .hosts_per_leaf = 2,
                                         .radix = 36});
  topology::attach_hosts(original, built.host_slots);
  const std::string text = topology::to_link_list(original);

  const Fabric parsed = topology::from_link_list(text);
  EXPECT_EQ(parsed.num_switches(true), original.num_switches(true));
  EXPECT_EQ(parsed.num_cas(), original.num_cas());
  // Re-export equals the import modulo line order and cable direction
  // (each cable is listed once, from whichever end has the lower NodeId).
  auto canonical = [](const std::string& s) {
    std::vector<std::string> lines;
    std::istringstream in(s);
    std::string a, b, pa, pb;
    while (in >> a >> pa >> b >> pb) {
      const std::string fwd = a + " " + pa + " " + b + " " + pb;
      const std::string rev = b + " " + pb + " " + a + " " + pa;
      lines.push_back(std::min(fwd, rev));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(canonical(topology::to_link_list(parsed)), canonical(text));
}

TEST(LinkListIo, CommentsAndCustomSwitchNames) {
  const std::string text =
      "# hand-written fabric\n"
      "alpha 1 host-a 1\n"
      "alpha 2 host-b 1\n";
  const Fabric fabric = topology::from_link_list(text, {"alpha"});
  EXPECT_EQ(fabric.num_switches(true), 1u);
  EXPECT_EQ(fabric.num_cas(), 2u);
}

TEST(LinkListIo, MalformedInputRejected) {
  EXPECT_THROW(topology::from_link_list("sw0 1 host\n"),
               std::invalid_argument);
  EXPECT_THROW(topology::from_link_list("sw0 0 host 1\n"),
               std::invalid_argument);
  EXPECT_THROW(topology::from_link_list("sw0 1 host 1\nsw0 1 other 1\n"),
               std::invalid_argument);  // port reused
}

}  // namespace
}  // namespace ibvs
