// Transactional live topology reconfiguration: validation errors, minimal
// re-routing, byte-identical rollback, journal recovery in both roll
// directions (directly and through an SmElection failover), the cloud
// drain-then-detach helper, and chaos topology faults.
//
// The contract under test mirrors the migration transactions: every
// topology delta ends kCommitted or kRolledBack — never in between — and a
// rolled-back delta leaves cabling, LID assignment and forwarding state
// byte-identical to the pre-transaction fabric. A master dying mid-delta is
// recovered by replaying the write-ahead journal, even when the recovering
// SM is a standby whose takeover sweep saw the half-mutated fabric.
#include <gtest/gtest.h>

#include <algorithm>

#include "cloud/orchestrator.hpp"
#include "cloud/planner.hpp"
#include "inject/chaos.hpp"
#include "inject/checker.hpp"
#include "inject/injector.hpp"
#include "sm/election.hpp"
#include "sm/topology_txn.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using test::VirtualSubnet;

/// Installed forwarding state of every physical switch, in NodeId order.
std::vector<Lft> installed_lfts(Fabric& fabric) {
  std::vector<Lft> out;
  for (const NodeId sw : fabric.switch_ids()) out.push_back(fabric.node(sw).lft);
  return out;
}

/// Runs `fn`, which must throw TopologyError, and returns its code.
template <typename Fn>
sm::TopologyErrc thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const sm::TopologyError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a TopologyError";
  return sm::TopologyErrc::kNotASwitch;
}

auto engine_factory() {
  return [] { return routing::make_engine(routing::EngineKind::kMinHop); };
}

/// The leaf's port cabled to `spine` (every leaf has exactly one).
PortNum uplink_port(const Fabric& fabric, NodeId leaf, NodeId spine) {
  const Node& n = fabric.node(leaf);
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    if (n.ports[p].connected() && n.ports[p].peer == spine) return p;
  }
  ADD_FAILURE() << "no uplink from " << leaf << " to " << spine;
  return 0;
}

/// A booted small virtual subnet plus a txn manager over its SM + journal.
struct Txns {
  VirtualSubnet s;
  sm::TopologyTxnManager topo;

  explicit Txns(core::LidScheme scheme = core::LidScheme::kDynamic)
      : s(VirtualSubnet::small(scheme)),
        topo(*s.sm, s.vsf->journal()) {
    s.vsf->boot();
  }
};

// ---------------------------------------------------------------------------
// Journal unit behavior.

TEST(TopologyRecord, LifecycleAndTruncation) {
  sm::ReconfigJournal journal;
  sm::TopologyRecord record;
  record.op = sm::TopologyOp::kDetachSwitch;
  record.subject = 5;
  record.subject_lid = Lid{9};
  record.cables = {{5, 1, 6, 2}};
  const auto id = journal.begin_topology(std::move(record));
  EXPECT_EQ(journal.in_flight(), 1u);
  ASSERT_NE(journal.find_topology(id), nullptr);
  EXPECT_EQ(journal.find_topology(id)->state, sm::RecordState::kInFlight);
  EXPECT_FALSE(journal.find_topology(id)->mutated);

  journal.record_topology_mutated(id);
  EXPECT_TRUE(journal.find_topology(id)->mutated);
  journal.record_topology_deltas(
      id, {{.switch_node = 6, .lid = Lid{9}, .old_port = 2, .new_port = 0}});
  ASSERT_EQ(journal.find_topology(id)->deltas.size(), 1u);

  journal.commit_topology(id);
  EXPECT_EQ(journal.in_flight(), 0u);
  EXPECT_EQ(journal.find_topology(id)->state, sm::RecordState::kCommitted);

  EXPECT_EQ(journal.truncate_reconciled(), 0u);
  journal.find_topology(id)->reconciled = true;
  EXPECT_EQ(journal.truncate_reconciled(), 1u);
  EXPECT_EQ(journal.find_topology(id), nullptr);
}

// ---------------------------------------------------------------------------
// Validation: every malformed delta fails up front with a typed code and
// leaves nothing in flight.

TEST(TopologyErrors, BeginValidates) {
  Txns t;
  Fabric& fabric = t.s.fabric;
  const NodeId spine = t.s.built.spines[0];
  const NodeId empty_leaf = t.s.built.leaves[3];

  // Attach: subject must be a fresh physical switch with sane cabling.
  EXPECT_EQ(thrown_code([&] { t.topo.begin_attach_switch(t.s.sm_node, {}); }),
            sm::TopologyErrc::kNotASwitch);
  EXPECT_EQ(thrown_code([&] { t.topo.begin_attach_switch(spine, {}); }),
            sm::TopologyErrc::kAlreadyCabled);
  const NodeId fresh = fabric.add_switch("fresh", 4);
  EXPECT_EQ(thrown_code([&] { t.topo.begin_attach_switch(fresh, {}); }),
            sm::TopologyErrc::kBadCable);
  // Peer port already taken.
  EXPECT_EQ(thrown_code([&] {
              t.topo.begin_attach_switch(
                  fresh, {{fresh, 1, spine,
                           uplink_port(fabric, spine, t.s.built.leaves[0])}});
            }),
            sm::TopologyErrc::kBadCable);
  // Duplicate subject port across two cables.
  const PortNum sp = *fabric.free_port(spine);
  EXPECT_EQ(thrown_code([&] {
              t.topo.begin_attach_switch(
                  fresh, {{fresh, 1, spine, sp}, {fresh, 1, spine, sp}});
            }),
            sm::TopologyErrc::kBadCable);

  // Detach: SM-severing and undrained subjects are refused.
  EXPECT_EQ(thrown_code([&] { t.topo.begin_detach_switch(fresh); }),
            sm::TopologyErrc::kNotCabled);
  const auto sm_leaf = fabric.physical_attachment(t.s.sm_node);
  ASSERT_TRUE(sm_leaf.has_value());
  EXPECT_EQ(thrown_code([&] { t.topo.begin_detach_switch(sm_leaf->first); }),
            sm::TopologyErrc::kWouldSeverSm);
  EXPECT_EQ(thrown_code([&] { t.topo.begin_detach_switch(t.s.built.leaves[0]); }),
            sm::TopologyErrc::kNotDrained);

  // Links: both ends must be free inter-switch ports; a cable must exist.
  EXPECT_EQ(thrown_code([&] {
              t.topo.begin_add_link(
                  {empty_leaf, uplink_port(fabric, empty_leaf, spine), spine,
                   sp});
            }),
            sm::TopologyErrc::kBadCable);
  EXPECT_EQ(thrown_code([&] {
              t.topo.begin_remove_link(empty_leaf, *fabric.free_port(empty_leaf));
            }),
            sm::TopologyErrc::kNotCabled);

  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);
}

// ---------------------------------------------------------------------------
// Happy paths: attach, detach, add/remove link all commit checker-clean.

TEST(TopologyTxn, AttachSwitchCommitsCheckerClean) {
  Txns t;
  Fabric& fabric = t.s.fabric;
  const NodeId s0 = t.s.built.spines[0];
  const NodeId s1 = t.s.built.spines[1];
  const NodeId sw = fabric.add_switch("new-leaf", 8);

  const auto txn = t.topo.attach_switch(
      sw, {{sw, 1, s0, *fabric.free_port(s0)},
           {sw, 2, s1, *fabric.free_port(s1)}});

  EXPECT_EQ(txn.state, sm::TopologyTxnState::kCommitted);
  EXPECT_TRUE(txn.subject_lid.valid());
  EXPECT_TRUE(t.s.sm->lids().assigned(txn.subject_lid));
  EXPECT_EQ(t.s.sm->lids().owner(txn.subject_lid).node, sw);
  EXPECT_EQ(txn.stats.addressing_smps, 1u);
  EXPECT_GT(txn.stats.lft_smps, 0u);
  EXPECT_TRUE(txn.stats.verify.converged);
  // The verification tail found nothing left to send: the minimal plan was
  // already complete.
  EXPECT_EQ(txn.stats.verify.smps, 0u);
  EXPECT_TRUE(t.s.sm->transport().hops_to(sw).has_value());
  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);

  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());
}

TEST(TopologyTxn, DetachEmptyLeafCommitsAndReleasesLid) {
  Txns t;
  const NodeId leaf = t.s.built.leaves[3];  // hosts no hypervisors or SM
  const Lid leaf_lid = t.s.fabric.node(leaf).lid();
  ASSERT_TRUE(leaf_lid.valid());

  const auto txn = t.topo.detach_switch(leaf);
  EXPECT_EQ(txn.state, sm::TopologyTxnState::kCommitted);
  EXPECT_TRUE(txn.lid_released);
  EXPECT_FALSE(t.s.sm->lids().assigned(leaf_lid));
  EXPECT_TRUE(t.s.fabric.cables_of(leaf).empty());
  EXPECT_GT(txn.stats.lft_smps, 0u);
  EXPECT_TRUE(txn.stats.verify.converged);
  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);

  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());
}

TEST(TopologyTxn, AddAndRemoveLinkRoundTrip) {
  Txns t;
  Fabric& fabric = t.s.fabric;
  const NodeId leaf = t.s.built.leaves[0];
  const NodeId spine = t.s.built.spines[0];

  // A second parallel leaf-spine cable: pure capacity, no repair needed.
  const CableSpec extra{leaf, *fabric.free_port(leaf), spine,
                        *fabric.free_port(spine)};
  const auto added = t.topo.add_link(extra);
  EXPECT_EQ(added.state, sm::TopologyTxnState::kCommitted);
  EXPECT_EQ(added.stats.lft_smps, 0u);

  // Removing it again: no master entry ever used it, still zero repair.
  const auto removed = t.topo.remove_link(extra.a, extra.port_a);
  EXPECT_EQ(removed.state, sm::TopologyTxnState::kCommitted);
  EXPECT_EQ(removed.stats.lft_smps, 0u);
  EXPECT_FALSE(fabric.peer(extra.a, extra.port_a).has_value());

  // Removing an original uplink forces real re-routing via the other spine.
  const auto rerouted =
      t.topo.remove_link(leaf, uplink_port(fabric, leaf, spine));
  EXPECT_EQ(rerouted.state, sm::TopologyTxnState::kCommitted);
  EXPECT_GT(rerouted.stats.lft_smps, 0u);
  EXPECT_GT(rerouted.stats.lids_rerouted, 0u);
  EXPECT_TRUE(rerouted.stats.verify.converged);

  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());
}

// ---------------------------------------------------------------------------
// Rollback byte-accuracy and the bridge guard.

TEST(TopologyTxn, RollbackIsByteIdentical) {
  Txns t;
  Fabric& fabric = t.s.fabric;
  const std::size_t switches_before = fabric.switch_ids().size();
  const auto lfts_before = installed_lfts(fabric);
  const auto top_lid_before = t.s.sm->lids().top_lid();

  const NodeId sw = fabric.add_switch("doomed", 8);
  const NodeId s0 = t.s.built.spines[0];
  auto txn = t.topo.begin_attach_switch(sw, {{sw, 1, s0, *fabric.free_port(s0)}});
  t.topo.txn_mutate(txn);
  t.topo.txn_reroute(txn);
  ASSERT_EQ(txn.state, sm::TopologyTxnState::kRerouted);
  ASSERT_TRUE(t.s.sm->lids().assigned(txn.subject_lid));

  t.topo.txn_rollback(txn);
  EXPECT_EQ(txn.state, sm::TopologyTxnState::kRolledBack);
  EXPECT_TRUE(fabric.cables_of(sw).empty());
  EXPECT_FALSE(t.s.sm->lids().assigned(txn.subject_lid));
  EXPECT_EQ(t.s.sm->lids().top_lid(), top_lid_before);
  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);
  ASSERT_NE(t.s.vsf->journal().find_topology(txn.id), nullptr);
  EXPECT_EQ(t.s.vsf->journal().find_topology(txn.id)->state,
            sm::RecordState::kRolledBack);

  // Every pre-existing switch's installed table is back to the exact
  // pre-transaction bytes.
  const auto lfts_after = installed_lfts(fabric);
  for (std::size_t i = 0; i < switches_before; ++i) {
    EXPECT_EQ(lfts_after[i], lfts_before[i]) << "switch index " << i;
  }
  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());
}

TEST(TopologyTxn, BridgeRemovalFailsAndRollsBack) {
  Txns t;
  Fabric& fabric = t.s.fabric;
  const NodeId s0 = t.s.built.spines[0];
  const NodeId sw = fabric.add_switch("stub", 4);
  const PortNum sp = *fabric.free_port(s0);
  ASSERT_EQ(t.topo.attach_switch(sw, {{sw, 1, s0, sp}}).state,
            sm::TopologyTxnState::kCommitted);
  const auto lfts_before = installed_lfts(fabric);

  // The stub's single cable is a bridge: removing it would sever a routed
  // switch, so the transaction must fail kRerouteFailed and restore it.
  EXPECT_EQ(thrown_code([&] { t.topo.remove_link(s0, sp); }),
            sm::TopologyErrc::kRerouteFailed);
  ASSERT_TRUE(fabric.peer(s0, sp).has_value());
  EXPECT_EQ(fabric.peer(s0, sp)->first, sw);
  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);
  EXPECT_EQ(installed_lfts(fabric), lfts_before);

  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());
}

// ---------------------------------------------------------------------------
// Journal recovery, same-SM: both roll directions of a detach.

TEST(TopologyJournalRecovery, DetachRollsBackWhenNothingJournaled) {
  Txns t;
  const NodeId leaf = t.s.built.leaves[3];
  const Lid leaf_lid = t.s.fabric.node(leaf).lid();
  const std::size_t cables_before = t.s.fabric.cables_of(leaf).size();
  const auto lfts_before = installed_lfts(t.s.fabric);

  auto txn = t.topo.begin_detach_switch(leaf);
  t.topo.txn_mutate(txn);
  // The master dies here: cabling severed, no deltas journaled. Recovery
  // must roll back — re-plug the exact cables and re-route nothing.
  const auto rec = t.s.vsf->journal().recover(*t.s.sm);
  EXPECT_EQ(rec.in_flight, 1u);
  EXPECT_EQ(rec.rolled_back, 1u);
  EXPECT_EQ(rec.rolled_forward, 0u);
  EXPECT_TRUE(rec.redistribution.converged);

  EXPECT_EQ(t.s.fabric.cables_of(leaf).size(), cables_before);
  EXPECT_TRUE(t.s.sm->lids().assigned(leaf_lid));
  EXPECT_EQ(installed_lfts(t.s.fabric), lfts_before);
  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);
  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());

  // Idempotent: a second recovery finds nothing and sends nothing.
  const auto again = t.s.vsf->journal().recover(*t.s.sm);
  EXPECT_EQ(again.in_flight, 0u);
  EXPECT_EQ(again.redistribution.smps, 0u);
}

TEST(TopologyJournalRecovery, DetachRollsForwardAfterDeltasJournaled) {
  Txns t;
  const NodeId leaf = t.s.built.leaves[3];
  const Lid leaf_lid = t.s.fabric.node(leaf).lid();

  auto txn = t.topo.begin_detach_switch(leaf);
  t.topo.txn_mutate(txn);
  // Die mid-apply: the full delta plan reached the journal before the first
  // LFT SMP, so recovery must finish the detach, not resurrect the switch.
  EXPECT_EQ(thrown_code([&] {
              t.topo.txn_reroute(txn, {.abort_after_smps = 1});
            }),
            sm::TopologyErrc::kInterrupted);
  ASSERT_EQ(t.s.vsf->journal().in_flight(), 1u);

  const auto rec = t.s.vsf->journal().recover(*t.s.sm);
  EXPECT_EQ(rec.rolled_forward, 1u);
  EXPECT_EQ(rec.rolled_back, 0u);
  EXPECT_TRUE(rec.redistribution.converged);

  EXPECT_TRUE(t.s.fabric.cables_of(leaf).empty());
  EXPECT_FALSE(t.s.sm->lids().assigned(leaf_lid));
  EXPECT_EQ(t.s.vsf->journal().in_flight(), 0u);
  const inject::FabricChecker checker(*t.s.sm);
  EXPECT_TRUE(checker.check(t.s.vsf.get()).clean());
}

// ---------------------------------------------------------------------------
// Journal recovery across SM failover: the standby's takeover sweep sees
// the half-mutated fabric, then its journal replay must still converge to a
// checker-clean outcome in BOTH roll directions.

/// Election fixture: a standby SM CA on the last free host slot, the
/// vSwitch fabric booted through the elected master, and a txn manager
/// bound to that master + the shared journal.
struct FailoverFixture {
  VirtualSubnet s;
  NodeId standby;
  sm::SmElection election;
  core::VSwitchFabric vsf;

  FailoverFixture()
      : s(VirtualSubnet::small(core::LidScheme::kPrepopulated)),
        standby([&] {
          const auto& slot = s.built.host_slots[9];
          const NodeId id = s.fabric.add_ca("standby-sm");
          s.fabric.connect(id, 1, slot.leaf, slot.port);
          return id;
        }()),
        election(s.fabric, engine_factory()),
        vsf([&]() -> sm::SubnetManager& {
          election.add_candidate(s.sm_node, 9);
          election.add_candidate(standby, 5);
          election.elect();
          election.master_sweep();
          return *election.master_sm();
        }(), s.hyps, core::LidScheme::kPrepopulated) {
    election.attach_journal(&vsf.journal());
    vsf.boot();
  }
};

TEST(TopologyJournalRecovery, FailoverRollsDetachBack) {
  FailoverFixture f;
  const NodeId spine = f.s.built.spines[0];
  const Lid spine_lid = f.s.fabric.node(spine).lid();
  const std::size_t cables_before = f.s.fabric.cables_of(spine).size();
  sm::TopologyTxnManager topo(*f.election.master_sm(), f.vsf.journal());

  auto txn = topo.begin_detach_switch(spine);
  topo.txn_mutate(txn);
  // Master dies with the spine severed and nothing journaled beyond the
  // mutation mark. The standby's takeover sweep routes the fabric *without*
  // the spine; the journal replay must re-plug it and repair the routes the
  // sweep never computed.
  f.election.fail_candidate(0);
  const auto report = f.election.poll();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 1u);
  EXPECT_EQ(report.journal_recovery.in_flight, 1u);
  EXPECT_EQ(report.journal_recovery.rolled_back, 1u);
  EXPECT_TRUE(report.journal_recovery.redistribution.converged);

  sm::SubnetManager& master = *f.election.master_sm();
  EXPECT_EQ(f.s.fabric.cables_of(spine).size(), cables_before);
  EXPECT_TRUE(master.lids().assigned(spine_lid));
  EXPECT_TRUE(master.transport().hops_to(spine).has_value());
  EXPECT_EQ(f.vsf.journal().in_flight(), 0u);

  const inject::FabricChecker checker(master);
  EXPECT_TRUE(checker.check(&f.vsf).clean());
}

TEST(TopologyJournalRecovery, FailoverRollsDetachForward) {
  FailoverFixture f;
  const NodeId spine = f.s.built.spines[0];
  const Lid spine_lid = f.s.fabric.node(spine).lid();
  sm::TopologyTxnManager topo(*f.election.master_sm(), f.vsf.journal());

  auto txn = topo.begin_detach_switch(spine);
  topo.txn_mutate(txn);
  EXPECT_EQ(thrown_code([&] {
              topo.txn_reroute(txn, {.abort_after_smps = 2});
            }),
            sm::TopologyErrc::kInterrupted);

  // Master dies mid-batch with the deltas journaled: the promoted standby
  // finishes the detach.
  f.election.fail_candidate(0);
  const auto report = f.election.poll();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(report.journal_recovery.rolled_forward, 1u);
  EXPECT_TRUE(report.journal_recovery.redistribution.converged);

  sm::SubnetManager& master = *f.election.master_sm();
  EXPECT_TRUE(f.s.fabric.cables_of(spine).empty());
  EXPECT_FALSE(master.lids().assigned(spine_lid));
  EXPECT_EQ(f.vsf.journal().in_flight(), 0u);

  const inject::FabricChecker checker(master);
  EXPECT_TRUE(checker.check(&f.vsf).clean());
}

// ---------------------------------------------------------------------------
// The cloud layer's drain-first policy.

TEST(DrainAndDetach, EvacuatesResidentVmsThenDetaches) {
  auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
  cloud.launch_vms(6);
  const NodeId leaf = s.built.leaves[0];

  const auto report = cloud::drain_and_detach(cloud, leaf);
  EXPECT_GE(report.vms_evacuated, 1u);
  EXPECT_EQ(report.detach.state, sm::TopologyTxnState::kCommitted);
  EXPECT_TRUE(s.fabric.cables_of(leaf).empty());
  for (std::size_t h = 0; h < s.hyps.size(); ++h) {
    if (s.hyps[h].leaf != leaf) continue;
    EXPECT_EQ(s.vsf->free_vf_count(h), s.hyps[h].vfs.size())
        << "hypervisor " << h << " still hosts VMs under the detached leaf";
  }
  EXPECT_EQ(s.vsf->journal().in_flight(), 0u);

  // The orphaned PF/vSwitch LIDs below the severed leaf count as detached,
  // not as violations.
  const inject::FabricChecker checker(*s.sm);
  const auto check = checker.check(s.vsf.get());
  EXPECT_TRUE(check.clean());
  EXPECT_GT(check.lids_skipped_detached, 0u);
}

// ---------------------------------------------------------------------------
// Chaos with topology faults: terminal outcomes, clean checker, and a
// seed-reproducible digest.

TEST(ChaosTopologyFaults, EveryDeltaTerminalAndReproducible) {
  std::uint64_t digests[2] = {0, 1};
  for (int run = 0; run < 2; ++run) {
    auto s = VirtualSubnet::small(core::LidScheme::kDynamic);
    s.vsf->boot();
    cloud::CloudOrchestrator cloud(*s.vsf, cloud::Placement::kSpread);
    cloud.launch_vms(s.hyps.size());
    inject::FaultInjector injector(s.fabric, /*seed=*/11);
    inject::ChaosConfig config;
    config.seed = 11;
    config.steps = 16;
    config.mad_faults.drop_probability = 0.02;
    config.weight_attach_switch = 3;
    config.weight_detach_switch = 3;
    config.weight_kill_switch_mid_attach = 2;
    config.weight_kill_master_mid_detach = 2;
    const auto report = inject::run_chaos(cloud, injector, config);

    EXPECT_EQ(report.checker_violations, 0u);
    EXPECT_TRUE(report.all_converged);
    // The topology events fired and every one of them ended terminal.
    EXPECT_GE(report.topology_commits + report.topology_rollbacks, 1u);
    EXPECT_EQ(s.vsf->journal().in_flight(), 0u);
    digests[run] = report.digest;
  }
  EXPECT_EQ(digests[0], digests[1]);
}

}  // namespace
}  // namespace ibvs
