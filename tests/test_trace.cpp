#include <gtest/gtest.h>

#include "core/virtualizer.hpp"
#include "fabric/trace.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"

namespace ibvs {
namespace {

struct TraceTest : ::testing::Test {
  Fabric fabric;
  NodeId leaf0 = kInvalidNode;
  NodeId leaf1 = kInvalidNode;
  NodeId spine = kInvalidNode;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  void SetUp() override {
    leaf0 = fabric.add_switch("leaf0", 4);
    leaf1 = fabric.add_switch("leaf1", 4);
    spine = fabric.add_switch("spine", 4);
    a = fabric.add_ca("a");
    b = fabric.add_ca("b");
    fabric.connect(a, 1, leaf0, 1);
    fabric.connect(b, 1, leaf1, 1);
    fabric.connect(leaf0, 4, spine, 1);
    fabric.connect(leaf1, 4, spine, 2);
    fabric.set_lid(a, 1, Lid{10});
    fabric.set_lid(b, 1, Lid{11});
    fabric.set_lid(leaf0, 0, Lid{1});
    fabric.set_lid(leaf1, 0, Lid{2});
    fabric.set_lid(spine, 0, Lid{3});
  }

  void install_routes() {
    fabric.node(leaf0).lft.set(Lid{11}, 4);
    fabric.node(spine).lft.set(Lid{11}, 2);
    fabric.node(leaf1).lft.set(Lid{11}, 1);
  }
};

TEST_F(TraceTest, DeliversAlongLfts) {
  install_routes();
  const auto t = fabric::trace_unicast(fabric, a, Lid{11});
  EXPECT_TRUE(t.delivered());
  EXPECT_EQ(t.status, fabric::TraceStatus::kDelivered);
  ASSERT_EQ(t.path.size(), 5u);
  EXPECT_EQ(t.path.front(), a);
  EXPECT_EQ(t.path.back(), b);
}

TEST_F(TraceTest, Loopback) {
  const auto t = fabric::trace_unicast(fabric, a, Lid{10});
  EXPECT_TRUE(t.delivered());
  EXPECT_EQ(t.path.size(), 1u);
}

TEST_F(TraceTest, DropsOnUnroutedEntry) {
  const auto t = fabric::trace_unicast(fabric, a, Lid{11});
  EXPECT_EQ(t.status, fabric::TraceStatus::kDropped);
}

TEST_F(TraceTest, DetectsForwardingLoop) {
  // leaf0 and spine bounce LID 11 between each other.
  fabric.node(leaf0).lft.set(Lid{11}, 4);
  fabric.node(spine).lft.set(Lid{11}, 1);
  const auto t = fabric::trace_unicast(fabric, a, Lid{11});
  EXPECT_EQ(t.status, fabric::TraceStatus::kLoop);
}

TEST_F(TraceTest, WrongDeliveryDetected) {
  // Route LID 11 into CA `a`'s own leaf port: lands at the wrong endpoint.
  fabric.node(leaf0).lft.set(Lid{11}, 1);
  const auto from_b_side = fabric::trace_unicast(fabric, b, Lid{11});
  EXPECT_TRUE(from_b_side.delivered());  // loopback at b itself
  // From a: leaf0 delivers back into a, which does not own 11.
  const auto t = fabric::trace_unicast(fabric, a, Lid{11});
  EXPECT_EQ(t.status, fabric::TraceStatus::kWrongDelivery);
}

TEST_F(TraceTest, SwitchLidDelivery) {
  install_routes();
  fabric.node(leaf0).lft.set(Lid{3}, 4);
  const auto t = fabric::trace_unicast(fabric, a, Lid{3});
  EXPECT_TRUE(t.delivered());
  EXPECT_EQ(t.path.back(), spine);
}

TEST_F(TraceTest, AllReachHelper) {
  install_routes();
  fabric.node(leaf1).lft.set(Lid{10}, 4);
  fabric.node(spine).lft.set(Lid{10}, 1);
  fabric.node(leaf0).lft.set(Lid{10}, 1);
  EXPECT_TRUE(fabric::all_reach(fabric, {a, b}, Lid{10}));
  EXPECT_TRUE(fabric::all_reach(fabric, {a, b}, Lid{11}));
  fabric.node(spine).lft.set(Lid{10}, kDropPort);
  EXPECT_FALSE(fabric::all_reach(fabric, {a, b}, Lid{10}));
}

TEST(TraceVSwitch, ForwardsThroughVSwitch) {
  Fabric fabric;
  const NodeId leaf = fabric.add_switch("leaf", 4);
  const auto hyp = core::attach_hypervisor(
      fabric, topology::HostSlot{leaf, 1}, 2, "hyp");
  const NodeId peer = fabric.add_ca("peer");
  fabric.connect(peer, 1, leaf, 2);
  fabric.set_lid(peer, 1, Lid{5});
  fabric.set_lid(hyp.pf, 1, Lid{6});
  fabric.set_lid(hyp.vfs[0], 1, Lid{7});
  fabric.set_lid(hyp.vswitch, 0, Lid{6});  // shares the PF LID

  // Routes on the physical leaf.
  fabric.node(leaf).lft.set(Lid{5}, 2);
  fabric.node(leaf).lft.set(Lid{6}, 1);
  fabric.node(leaf).lft.set(Lid{7}, 1);

  // peer -> VF traverses leaf then the vSwitch's functional forwarding.
  const auto down = fabric::trace_unicast(fabric, peer, Lid{7});
  EXPECT_TRUE(down.delivered());
  EXPECT_EQ(down.path.back(), hyp.vfs[0]);

  // VF -> peer goes up the shared uplink.
  const auto up = fabric::trace_unicast(fabric, hyp.vfs[0], Lid{5});
  EXPECT_TRUE(up.delivered());
  EXPECT_EQ(up.path.back(), peer);

  // VF -> PF stays inside the vSwitch (never touches the leaf).
  const auto local = fabric::trace_unicast(fabric, hyp.vfs[0], Lid{6});
  EXPECT_TRUE(local.delivered());
  for (NodeId n : local.path) EXPECT_NE(n, leaf);

  // Unknown LID arriving at the vSwitch from the uplink is dropped there.
  fabric.node(leaf).lft.set(Lid{9}, 1);
  const auto dropped = fabric::trace_unicast(fabric, peer, Lid{9});
  EXPECT_EQ(dropped.status, fabric::TraceStatus::kDropped);
}

TEST(TraceErrors, RequiresCaSourceAndValidLid) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 2);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 1);
  EXPECT_THROW(fabric::trace_unicast(fabric, sw, Lid{1}),
               std::invalid_argument);
  EXPECT_THROW(fabric::trace_unicast(fabric, ca, kInvalidLid),
               std::invalid_argument);
}

TEST(TraceStatusNames, EveryEnumeratorHasAName) {
  EXPECT_EQ(fabric::to_string(fabric::TraceStatus::kDelivered), "delivered");
  EXPECT_EQ(fabric::to_string(fabric::TraceStatus::kDropped), "dropped");
  EXPECT_EQ(fabric::to_string(fabric::TraceStatus::kLoop), "loop");
  EXPECT_EQ(fabric::to_string(fabric::TraceStatus::kNoRoute), "no-route");
  EXPECT_EQ(fabric::to_string(fabric::TraceStatus::kWrongDelivery),
            "wrong-delivery");
}

TEST(TraceStatusNames, OutOfRangeValueIsGreppable) {
  EXPECT_EQ(fabric::to_string(static_cast<fabric::TraceStatus>(99)),
            "invalid-trace-status(99)");
}

}  // namespace
}  // namespace ibvs
