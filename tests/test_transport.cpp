#include <gtest/gtest.h>

#include "fabric/transport.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"

namespace ibvs {
namespace {

struct TransportTest : ::testing::Test {
  Fabric fabric;
  topology::Built built;
  std::vector<NodeId> hosts;

  void SetUp() override {
    built = topology::build_two_level_fat_tree(
        fabric, topology::TwoLevelParams{.num_leaves = 2,
                                         .num_spines = 2,
                                         .hosts_per_leaf = 2,
                                         .radix = 8});
    hosts = topology::attach_hosts(fabric, built.host_slots);
  }
};

TEST_F(TransportTest, HopCounts) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  EXPECT_EQ(transport.hops_to(hosts[0]), 0u);
  EXPECT_EQ(transport.hops_to(built.leaves[0]), 1u);   // own leaf
  EXPECT_EQ(transport.hops_to(built.spines[0]), 2u);
  EXPECT_EQ(transport.hops_to(built.leaves[1]), 3u);   // across a spine
  EXPECT_EQ(transport.hops_to(hosts[2]), 4u);          // host on other leaf
}

TEST_F(TransportTest, HopsInvalidateOnTopologyChange) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  EXPECT_TRUE(transport.hops_to(hosts[2]).has_value());
  fabric.disconnect(hosts[2], 1);
  transport.invalidate_topology();
  EXPECT_FALSE(transport.hops_to(hosts[2]).has_value());
}

TEST_F(TransportTest, LftBlockWriteInstalls) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  block[5] = 3;
  const auto outcome = transport.send_lft_block(built.leaves[1], 0, block);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.hops, 3u);
  EXPECT_EQ(fabric.node(built.leaves[1]).lft.get(Lid{5}), 3);
  EXPECT_EQ(transport.counters().lft_block_writes, 1u);
  EXPECT_EQ(transport.counters().total, 1u);
}

TEST_F(TransportTest, LftBlockRejectsNonSwitchTargets) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  EXPECT_THROW(transport.send_lft_block(hosts[1], 0, block),
               std::invalid_argument);
}

TEST_F(TransportTest, DirectedCostsMoreThanLidRouted) {
  fabric::TimingModel timing;
  timing.hop_latency_us = 1.0;
  timing.directed_hop_overhead_us = 4.0;
  timing.target_processing_us = 0.0;
  fabric::SmpTransport transport(fabric, hosts[0], timing);
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  const auto directed = transport.send_lft_block(built.spines[0], 0, block,
                                                 SmpRouting::kDirected);
  const auto lid_routed = transport.send_lft_block(built.spines[0], 0, block,
                                                   SmpRouting::kLidRouted);
  EXPECT_DOUBLE_EQ(directed.latency_us, 2 * (1.0 + 4.0));  // eq. (2) k + r
  EXPECT_DOUBLE_EQ(lid_routed.latency_us, 2 * 1.0);        // eq. (5) k only
  EXPECT_EQ(transport.counters().directed, 1u);
  EXPECT_EQ(transport.counters().lid_routed, 1u);
}

TEST_F(TransportTest, CountersClassifyAttributes) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  transport.send_vf_lid_assign(hosts[1], 2, Lid{9});
  transport.send_guid_info(hosts[1], 1, Guid{1});
  transport.send_port_info_set(hosts[1], 1);
  transport.send_discovery_get(hosts[1], SmpAttribute::kNodeInfo, 4);
  const auto& c = transport.counters();
  EXPECT_EQ(c.vf_lid_assign, 1u);
  EXPECT_EQ(c.guid_info, 1u);
  EXPECT_EQ(c.port_info, 1u);
  EXPECT_EQ(c.discovery, 1u);
  EXPECT_EQ(c.total, 4u);
  transport.reset_counters();
  EXPECT_EQ(transport.counters().total, 0u);
}

TEST_F(TransportTest, MftSlicesAreCountedAndTimed) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  const auto outcome = transport.send_mft_slice(built.spines[0], 0, 1);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_EQ(outcome.hops, 2u);
  EXPECT_GT(outcome.latency_us, 0.0);
  EXPECT_EQ(transport.counters().mft_block_writes, 1u);
  EXPECT_EQ(transport.counters().total, 1u);
  // MFTs live on physical switches only.
  EXPECT_THROW(transport.send_mft_slice(hosts[1], 0, 0),
               std::invalid_argument);
}

TEST_F(TransportTest, SerialBatchSumsLatencies) {
  fabric::TimingModel timing;
  timing.hop_latency_us = 1.0;
  timing.directed_hop_overhead_us = 0.0;
  timing.sm_issue_gap_us = 0.0;
  timing.target_processing_us = 0.0;
  timing.pipeline_depth = 1;
  fabric::SmpTransport transport(fabric, hosts[0], timing);
  std::vector<PortNum> block(kLftBlockSize, kDropPort);

  transport.begin_batch();
  // Two SMPs to a 1-hop switch: serial makespan = 1 + 1 us.
  transport.send_lft_block(built.leaves[0], 0, block);
  transport.send_lft_block(built.leaves[0], 1, block);
  const double makespan = transport.end_batch();
  EXPECT_DOUBLE_EQ(makespan, 2.0);
}

TEST_F(TransportTest, PipeliningShortensBatch) {
  fabric::TimingModel timing;
  timing.hop_latency_us = 10.0;
  timing.directed_hop_overhead_us = 0.0;
  timing.sm_issue_gap_us = 1.0;
  timing.target_processing_us = 0.0;

  const auto makespan_with_depth = [&](unsigned depth) {
    timing.pipeline_depth = depth;
    fabric::SmpTransport transport(fabric, hosts[0], timing);
    std::vector<PortNum> block(kLftBlockSize, kDropPort);
    transport.begin_batch();
    for (int i = 0; i < 8; ++i) {
      transport.send_lft_block(built.leaves[0], i, block);
    }
    return transport.end_batch();
  };

  const double serial = makespan_with_depth(1);
  const double piped = makespan_with_depth(4);
  EXPECT_LT(piped, serial);
  // Serial: each SMP waits for the previous (10us each): 8 * 10 = 80.
  EXPECT_DOUBLE_EQ(serial, 80.0);
}

TEST_F(TransportTest, BatchMisuseThrows) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  EXPECT_THROW(transport.end_batch(), std::invalid_argument);
  transport.begin_batch();
  EXPECT_THROW(transport.begin_batch(), std::invalid_argument);
  transport.end_batch();
}

TEST_F(TransportTest, TotalTimeAccumulates) {
  fabric::SmpTransport transport(fabric, hosts[0]);
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  transport.send_lft_block(built.leaves[0], 0, block);
  EXPECT_GT(transport.total_time_us(), 0.0);
  transport.reset_time();
  EXPECT_DOUBLE_EQ(transport.total_time_us(), 0.0);
}

}  // namespace
}  // namespace ibvs
