#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "ib/types.hpp"

namespace ibvs {
namespace {

TEST(Lid, ValidityAndOrdering) {
  EXPECT_FALSE(kInvalidLid.valid());
  EXPECT_TRUE(Lid{1}.valid());
  EXPECT_LT(Lid{1}, Lid{2});
  EXPECT_EQ(Lid{7}, Lid{7});
  EXPECT_EQ(kTopmostUnicastLid.value(), 0xBFFFu);
  // 49151 usable unicast LIDs — the subnet size bound of §II-B.
  EXPECT_EQ(kUnicastLidCount, 49151u);
}

TEST(Lid, Hashable) {
  std::unordered_set<Lid> set;
  set.insert(Lid{1});
  set.insert(Lid{1});
  set.insert(Lid{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Guid, Validity) {
  EXPECT_FALSE(kInvalidGuid.valid());
  EXPECT_TRUE(Guid{0xDEAD}.valid());
  EXPECT_EQ(Guid{5}, Guid{5});
}

TEST(Gid, FormedFromPrefixAndGuid) {
  const Gid gid = make_gid(kDefaultSubnetPrefix, Guid{0x42});
  EXPECT_TRUE(gid.valid());
  EXPECT_EQ(gid.prefix, 0xFE80000000000000ULL);
  EXPECT_EQ(gid.guid.value(), 0x42u);
  EXPECT_FALSE(make_gid(kDefaultSubnetPrefix, kInvalidGuid).valid());
}

TEST(Streaming, HumanReadable) {
  std::ostringstream os;
  os << Lid{42} << " " << Guid{0xABC} << " "
     << make_gid(kDefaultSubnetPrefix, Guid{0x1});
  const std::string s = os.str();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("0x0000000000000abc"), std::string::npos);
  EXPECT_NE(s.find("fe80000000000000"), std::string::npos);
}

TEST(Constants, DropPortAndBlockSize) {
  EXPECT_EQ(kLftBlockSize, 64u);
  EXPECT_EQ(kDropPort, 255);
}

}  // namespace
}  // namespace ibvs
