#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ibvs {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SplitMix64, BelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(SplitMix64, BetweenInclusive) {
  SplitMix64 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
  EXPECT_THROW(rng.between(5, 3), std::invalid_argument);
}

TEST(SplitMix64, UniformInUnitInterval) {
  SplitMix64 rng(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SplitMix64, ForkIsIndependentStream) {
  SplitMix64 a(42);
  SplitMix64 forked = a.fork();
  // The fork and the parent should not produce identical sequences.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a() == forked()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ChunksPartitionRange) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(0, 103, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsReused) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(w.elapsed().count(), 0);
  EXPECT_GE(w.elapsed_seconds(), 0.0);
  EXPECT_GE(w.elapsed_ms(), 0.0);
  w.reset();
  EXPECT_LT(w.elapsed_seconds(), 1.0);
}

TEST(Expect, RequireThrowsInvalidArgument) {
  EXPECT_THROW(IBVS_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(IBVS_REQUIRE(true, "fine"));
}

TEST(Expect, EnsureThrowsLogicError) {
  EXPECT_THROW(IBVS_ENSURE(false, "bug"), std::logic_error);
  EXPECT_NO_THROW(IBVS_ENSURE(true, "fine"));
}

TEST(ThreadPool, SetGlobalThreadsResizes) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global_thread_count(), 3u);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  // The resized pool still does work.
  std::atomic<int> sum{0};
  ThreadPool::global().parallel_for(0, 100,
                                    [&](std::size_t i) { sum += int(i); });
  EXPECT_EQ(sum.load(), 4950);
  // 0 restores the default sizing chain.
  ThreadPool::set_global_threads(0);
  EXPECT_GE(ThreadPool::global_thread_count(), 1u);
}

TEST(Expect, MessageContainsContext) {
  try {
    IBVS_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ibvs
